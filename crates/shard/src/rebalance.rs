//! Online repartitioning: split, merge and move key ranges between
//! shards without stopping the world.
//!
//! A [`RebalancePlan`] is a list of rule edits plus a **cutover batch
//! id**. Because the commit decision is a pure function of (snapshot,
//! batch, TIDs), the aligned batch id is a global barrier — the same
//! barrier the cross-shard merge and failover promotion already key off —
//! so the server applies the plan atomically *between* batches: every
//! batch `< cutover` routes and executes under the old rules, every batch
//! `>= cutover` under the new ones, and no batch ever sees both. Rows
//! migrate at the barrier by re-slicing the live per-shard databases with
//! the new partitioner (`Database::partition_clone` + absorb); membership
//! (phantom-guard) ownership re-homes for free because the execution
//! scopes are derived from whichever partitioner is current.
//!
//! The [`RebalancePlanner`] watches per-shard load (the engines' batch
//! histograms) and emits an [`Imbalance`] verdict once skew persists past
//! a hysteresis window; the server turns that into a concrete split with
//! [`plan_split`].

use ltpg_storage::{Database, RowId, TableId};
use std::fmt;

use crate::partition::{PartitionError, Partitioner, TableRule};

/// One rule edit inside a [`RebalancePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceOp {
    /// Split the range of `table` containing key `at` in two: keys below
    /// `at` keep their current home, keys `>= at` (up to the old range's
    /// upper bound) re-home to shard `to`.
    Split {
        /// Table whose range is split.
        table: TableId,
        /// New split point; must not already be a bound.
        at: i64,
        /// Home of the upper half.
        to: u32,
    },
    /// Re-home every range of `table` currently owned by `from` onto
    /// `to`, coalescing ranges that become adjacent with equal homes.
    /// After the merge, shard `from` owns no range of this table.
    Merge {
        /// Table whose ranges are merged.
        table: TableId,
        /// Shard giving up its ranges; must own at least one.
        from: u32,
        /// Shard receiving them.
        to: u32,
    },
    /// Re-home the single range of `table` containing key `at` onto
    /// shard `to`.
    Move {
        /// Table whose range moves.
        table: TableId,
        /// Any key inside the range to move.
        at: i64,
        /// New home of the range.
        to: u32,
    },
    /// Replace `table`'s rule wholesale. The escape hatch for tables not
    /// range-partitioned yet (hash or stride rules have no ranges to
    /// split), and the op differential harnesses use to reshape routing
    /// arbitrarily.
    SetRule {
        /// Table whose rule is replaced.
        table: TableId,
        /// The new rule; validated against the live shard count.
        rule: TableRule,
    },
}

/// A validated-on-schedule topology change applied at an aligned batch
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// First batch id routed under the new rules. Batches `< cutover`
    /// run under the old partitioner.
    pub cutover: u64,
    /// Rule edits, applied in order.
    pub ops: Vec<RebalanceOp>,
}

/// Why a plan was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceError {
    /// The plan contained no ops.
    EmptyPlan,
    /// Another plan is already scheduled and has not cut over yet.
    AlreadyScheduled,
    /// The cutover batch id has already been executed.
    CutoverInPast {
        /// Requested cutover.
        cutover: u64,
        /// The next batch id the server will execute.
        next: u64,
    },
    /// A Split/Merge/Move targeted a table whose rule has no ranges
    /// (hash, stride or replicated); use [`RebalanceOp::SetRule`].
    NotRangePartitioned {
        /// The targeted table.
        table: TableId,
    },
    /// A split point that is already a bound (the split would create an
    /// empty range).
    SplitAtExistingBound {
        /// The targeted table.
        table: TableId,
        /// The rejected split point.
        at: i64,
    },
    /// A Merge named a `from` shard that owns no range of the table.
    ShardNotPresent {
        /// The targeted table.
        table: TableId,
        /// The shard that owns nothing there.
        shard: u32,
    },
    /// A Merge with `from == to`.
    SameShard {
        /// The repeated shard.
        shard: u32,
    },
    /// A destination shard past the last shard.
    ShardOutOfRange {
        /// The offending shard.
        shard: u32,
        /// Shards available.
        shards: u32,
    },
    /// The edited rule failed partitioner validation.
    Partition(PartitionError),
}

impl fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalanceError::EmptyPlan => write!(f, "rebalance plan has no ops"),
            RebalanceError::AlreadyScheduled => {
                write!(f, "a rebalance plan is already scheduled")
            }
            RebalanceError::CutoverInPast { cutover, next } => {
                write!(f, "cutover batch {cutover} already executed (next is {next})")
            }
            RebalanceError::NotRangePartitioned { table } => {
                write!(f, "table {} is not range-partitioned", table.0)
            }
            RebalanceError::SplitAtExistingBound { table, at } => {
                write!(f, "split point {at} is already a bound of table {}", table.0)
            }
            RebalanceError::ShardNotPresent { table, shard } => {
                write!(f, "shard {shard} owns no range of table {}", table.0)
            }
            RebalanceError::SameShard { shard } => {
                write!(f, "merge from and to are both shard {shard}")
            }
            RebalanceError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range for {shards} shards")
            }
            RebalanceError::Partition(e) => write!(f, "rule rejected: {e}"),
        }
    }
}

impl std::error::Error for RebalanceError {}

impl From<PartitionError> for RebalanceError {
    fn from(e: PartitionError) -> Self {
        RebalanceError::Partition(e)
    }
}

/// The table's rule as an explicit `(bounds, homes)` range map. A plain
/// `Range` rule is the map `homes = [0, 1, .., len]`.
fn range_map_of(
    part: &Partitioner,
    table: TableId,
) -> Result<(Vec<i64>, Vec<u32>), RebalanceError> {
    match part.table_rule(table) {
        TableRule::Range { bounds } => {
            Ok((bounds.clone(), (0..=bounds.len() as u32).collect()))
        }
        TableRule::RangeMap { bounds, homes } => Ok((bounds.clone(), homes.clone())),
        _ => Err(RebalanceError::NotRangePartitioned { table }),
    }
}

/// Drop bounds separating adjacent ranges with equal homes, so merges
/// and moves leave the map in canonical form.
fn coalesce(bounds: &mut Vec<i64>, homes: &mut Vec<u32>) {
    let mut i = 0;
    while i + 1 < homes.len() {
        if homes[i] == homes[i + 1] {
            homes.remove(i + 1);
            bounds.remove(i);
        } else {
            i += 1;
        }
    }
}

fn check_shard(shard: u32, shards: u32) -> Result<(), RebalanceError> {
    if shard >= shards {
        return Err(RebalanceError::ShardOutOfRange { shard, shards });
    }
    Ok(())
}

impl RebalancePlan {
    /// Validate the plan against the live partitioner and derive the
    /// post-cutover partitioner. Pure: the input is untouched, so the
    /// server can route with the old rules until the cutover batch while
    /// holding the pre-built new ones.
    pub fn apply_to(&self, part: &Partitioner) -> Result<Partitioner, RebalanceError> {
        if self.ops.is_empty() {
            return Err(RebalanceError::EmptyPlan);
        }
        let shards = part.shards();
        let mut out = part.clone();
        for op in &self.ops {
            out = match op {
                RebalanceOp::SetRule { table, rule } => out.try_with_rule(*table, rule.clone())?,
                RebalanceOp::Split { table, at, to } => {
                    check_shard(*to, shards)?;
                    let (mut bounds, mut homes) = range_map_of(&out, *table)?;
                    if bounds.binary_search(at).is_ok() {
                        return Err(RebalanceError::SplitAtExistingBound { table: *table, at: *at });
                    }
                    let i = bounds.partition_point(|b| *b <= *at);
                    bounds.insert(i, *at);
                    homes.insert(i + 1, *to);
                    coalesce(&mut bounds, &mut homes);
                    out.try_with_rule(*table, TableRule::RangeMap { bounds, homes })?
                }
                RebalanceOp::Merge { table, from, to } => {
                    if from == to {
                        return Err(RebalanceError::SameShard { shard: *from });
                    }
                    check_shard(*from, shards)?;
                    check_shard(*to, shards)?;
                    let (mut bounds, mut homes) = range_map_of(&out, *table)?;
                    if !homes.contains(from) {
                        return Err(RebalanceError::ShardNotPresent { table: *table, shard: *from });
                    }
                    for h in &mut homes {
                        if h == from {
                            *h = *to;
                        }
                    }
                    coalesce(&mut bounds, &mut homes);
                    out.try_with_rule(*table, TableRule::RangeMap { bounds, homes })?
                }
                RebalanceOp::Move { table, at, to } => {
                    check_shard(*to, shards)?;
                    let (mut bounds, mut homes) = range_map_of(&out, *table)?;
                    let i = bounds.partition_point(|b| *b <= *at);
                    homes[i] = *to;
                    coalesce(&mut bounds, &mut homes);
                    out.try_with_rule(*table, TableRule::RangeMap { bounds, homes })?
                }
            };
        }
        Ok(out)
    }

    /// Op counts `(splits, merges, moves, set_rules)` for telemetry.
    pub fn op_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op {
                RebalanceOp::Split { .. } => c.0 += 1,
                RebalanceOp::Merge { .. } => c.1 += 1,
                RebalanceOp::Move { .. } => c.2 += 1,
                RebalanceOp::SetRule { .. } => c.3 += 1,
            }
        }
        c
    }
}

/// Hysteresis knobs for the load-driven planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Emit only when the hottest shard's load exceeds this multiple of
    /// the mean load.
    pub imbalance_ratio: f64,
    /// Consecutive over-threshold observations required before emitting
    /// (filters one-batch spikes).
    pub patience: u32,
    /// Observations to stay silent after emitting, letting the cutover
    /// and migration settle before re-measuring.
    pub cooldown: u32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { imbalance_ratio: 1.5, patience: 3, cooldown: 8 }
    }
}

/// The planner's verdict: sustained skew from `hot` toward `cold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Imbalance {
    /// The most loaded shard.
    pub hot: u32,
    /// The least loaded shard (split target).
    pub cold: u32,
    /// Hot load over mean load at the emitting observation.
    pub ratio: f64,
}

/// Watches cumulative per-shard load and emits an [`Imbalance`] once the
/// skew persists past the hysteresis window. Feed it one cumulative
/// sample per shard per tick (e.g. the engines' `ltpg.batch.total_ns`
/// histogram sums); it differences internally.
#[derive(Debug)]
pub struct RebalancePlanner {
    cfg: PlannerConfig,
    last: Vec<f64>,
    streak: u32,
    cooldown_left: u32,
}

impl RebalancePlanner {
    /// A planner with the given hysteresis knobs.
    pub fn new(cfg: PlannerConfig) -> Self {
        RebalancePlanner { cfg, last: Vec::new(), streak: 0, cooldown_left: 0 }
    }

    /// Observe one round of cumulative per-shard load. `Some` when skew
    /// has persisted for `patience` consecutive rounds (then enters the
    /// cooldown window).
    pub fn observe(&mut self, cumulative: &[f64]) -> Option<Imbalance> {
        let n = cumulative.len();
        if self.last.len() != n {
            self.last = vec![0.0; n];
        }
        let delta: Vec<f64> =
            cumulative.iter().zip(&self.last).map(|(c, l)| (c - l).max(0.0)).collect();
        self.last.copy_from_slice(cumulative);
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.streak = 0;
            return None;
        }
        let total: f64 = delta.iter().sum();
        if n < 2 || total <= 0.0 {
            self.streak = 0;
            return None;
        }
        let mean = total / n as f64;
        let (hot, max) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, v)| (i as u32, *v))
            .expect("non-empty");
        let cold = delta
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .expect("non-empty");
        let ratio = max / mean;
        if ratio < self.cfg.imbalance_ratio || hot == cold {
            self.streak = 0;
            return None;
        }
        self.streak += 1;
        if self.streak < self.cfg.patience {
            return None;
        }
        self.streak = 0;
        self.cooldown_left = self.cfg.cooldown;
        Some(Imbalance { hot, cold, ratio })
    }
}

/// Turn an [`Imbalance`] into a concrete plan: split the hottest shard's
/// most populous range-partitioned table at the median occupied key,
/// re-homing the upper half onto `to`. `db` is the hot shard's live
/// slice. `None` when no range-partitioned table holds at least two keys
/// on `hot` (nothing to split) or the median lands on an existing bound.
pub fn plan_split(
    part: &Partitioner,
    db: &Database,
    hot: u32,
    to: u32,
    cutover: u64,
) -> Option<RebalancePlan> {
    let mut best: Option<(TableId, Vec<i64>)> = None;
    for (id, t) in db.iter() {
        if !matches!(part.table_rule(id), TableRule::Range { .. } | TableRule::RangeMap { .. }) {
            continue;
        }
        let mut keys: Vec<i64> = (0..t.len())
            .filter_map(|r| t.key_of(RowId(r as u32)))
            .filter(|k| part.home(id, *k) == hot)
            .collect();
        if keys.len() < 2 {
            continue;
        }
        if best.as_ref().is_none_or(|(_, b)| keys.len() > b.len()) {
            keys.sort_unstable();
            best = Some((id, keys));
        }
    }
    let (table, keys) = best?;
    let at = keys[keys.len() / 2];
    let plan = RebalancePlan { cutover, ops: vec![RebalanceOp::Split { table, at, to }] };
    plan.apply_to(part).ok()?;
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(0);

    fn ranged(shards: u32, bounds: Vec<i64>) -> Partitioner {
        Partitioner::hash(shards).with_rule(T, TableRule::Range { bounds })
    }

    fn map_of(p: &Partitioner) -> (Vec<i64>, Vec<u32>) {
        match p.table_rule(T) {
            TableRule::RangeMap { bounds, homes } => (bounds.clone(), homes.clone()),
            other => panic!("expected a range map, got {other:?}"),
        }
    }

    #[test]
    fn split_rehomes_the_upper_half() {
        let p = ranged(4, vec![100]);
        let plan = RebalancePlan {
            cutover: 5,
            ops: vec![RebalanceOp::Split { table: T, at: 50, to: 3 }],
        };
        let q = plan.apply_to(&p).unwrap();
        assert_eq!(map_of(&q), (vec![50, 100], vec![0, 3, 1]));
        assert_eq!(q.home(T, 49), 0);
        assert_eq!(q.home(T, 50), 3);
        assert_eq!(q.home(T, 99), 3);
        assert_eq!(q.home(T, 100), 1);
        // Untouched keys keep their homes.
        assert_eq!(p.home(T, 100), q.home(T, 100));
    }

    #[test]
    fn merge_rehomes_and_coalesces() {
        let p = ranged(4, vec![100, 200]);
        let plan = RebalancePlan {
            cutover: 1,
            ops: vec![RebalanceOp::Merge { table: T, from: 1, to: 0 }],
        };
        let q = plan.apply_to(&p).unwrap();
        // [.. ,100) -> 0, [100, 200) -> 0 coalesce into one range.
        assert_eq!(map_of(&q), (vec![200], vec![0, 2]));
        assert_eq!(q.home(T, 150), 0);
        assert_eq!(q.home(T, 200), 2);
    }

    #[test]
    fn move_rehomes_a_single_range() {
        let p = ranged(4, vec![100, 200]);
        let plan = RebalancePlan {
            cutover: 1,
            ops: vec![RebalanceOp::Move { table: T, at: 150, to: 3 }],
        };
        let q = plan.apply_to(&p).unwrap();
        assert_eq!(map_of(&q), (vec![100, 200], vec![0, 3, 2]));
    }

    #[test]
    fn plans_compose_and_validate() {
        let p = ranged(4, vec![100]);
        let plan = RebalancePlan {
            cutover: 1,
            ops: vec![
                RebalanceOp::Split { table: T, at: 50, to: 2 },
                RebalanceOp::Merge { table: T, from: 1, to: 2 },
            ],
        };
        let q = plan.apply_to(&p).unwrap();
        // Split yields homes [0,2,1]; merging 1 into 2 coalesces the two
        // trailing ranges.
        assert_eq!(map_of(&q), (vec![50], vec![0, 2]));

        let errs: Vec<RebalanceError> = [
            RebalancePlan { cutover: 0, ops: vec![] },
            RebalancePlan { cutover: 0, ops: vec![RebalanceOp::Split { table: T, at: 100, to: 1 }] },
            RebalancePlan { cutover: 0, ops: vec![RebalanceOp::Split { table: T, at: 5, to: 9 }] },
            RebalancePlan { cutover: 0, ops: vec![RebalanceOp::Merge { table: T, from: 3, to: 0 }] },
            RebalancePlan { cutover: 0, ops: vec![RebalanceOp::Merge { table: T, from: 1, to: 1 }] },
            RebalancePlan {
                cutover: 0,
                ops: vec![RebalanceOp::Split { table: TableId(9), at: 5, to: 1 }],
            },
        ]
        .iter()
        .map(|plan| plan.apply_to(&p).unwrap_err())
        .collect();
        assert_eq!(errs[0], RebalanceError::EmptyPlan);
        assert_eq!(errs[1], RebalanceError::SplitAtExistingBound { table: T, at: 100 });
        assert_eq!(errs[2], RebalanceError::ShardOutOfRange { shard: 9, shards: 4 });
        assert_eq!(errs[3], RebalanceError::ShardNotPresent { table: T, shard: 3 });
        assert_eq!(errs[4], RebalanceError::SameShard { shard: 1 });
        // A hash-ruled table (TableId(9) falls back to the default rule)
        // cannot be range-split.
        assert_eq!(errs[5], RebalanceError::NotRangePartitioned { table: TableId(9) });
    }

    #[test]
    fn planner_applies_patience_and_cooldown() {
        let mut pl = RebalancePlanner::new(PlannerConfig {
            imbalance_ratio: 1.5,
            patience: 3,
            cooldown: 2,
        });
        // Cumulative loads: shard 0 gains 400/round, shard 1 gains 100.
        let mut cum = [0.0f64, 0.0];
        let mut verdicts = Vec::new();
        for round in 0..8 {
            cum[0] += 400.0;
            cum[1] += 100.0;
            verdicts.push((round, pl.observe(&cum)));
        }
        // Patience 3: silent on rounds 0-1, emits on round 2; cooldown 2
        // covers rounds 3-4; streak rebuilds on 5-6, emits again on 7.
        let emitted: Vec<usize> =
            verdicts.iter().filter(|(_, v)| v.is_some()).map(|(r, _)| *r).collect();
        assert_eq!(emitted, vec![2, 7]);
        let v = verdicts[2].1.as_ref().unwrap();
        assert_eq!((v.hot, v.cold), (0, 1));
        assert!(v.ratio > 1.5);
    }

    #[test]
    fn planner_ignores_balanced_and_idle_load() {
        let mut pl = RebalancePlanner::new(PlannerConfig::default());
        assert_eq!(pl.observe(&[0.0, 0.0]), None);
        let mut cum = [0.0f64, 0.0];
        for _ in 0..10 {
            cum[0] += 100.0;
            cum[1] += 100.0;
            assert_eq!(pl.observe(&cum), None, "balanced load must never emit");
        }
    }
}
