//! Transaction routing: which shards must participate in a transaction.
//!
//! The route of a transaction is a **pure function of its declared access
//! set and the partitioner** — no load balancing, no run-time state — so
//! every node (and every replay of the WAL) classifies a transaction the
//! same way. Participants are:
//!
//! * the home shard of every row read (skipped for replicated tables —
//!   any participant can read its full local copy),
//! * the home shard of every row written or inserted (a write to a
//!   *replicated* table must reach every copy, so it broadcasts),
//! * the membership owner of every inserted or deleted key's partition
//!   (phantom guards must register where ordered scanners look).
//!
//! Transactions whose key set cannot be derived statically (ordered-scan
//! ops; see [`ltpg_txn::declared`]) broadcast to every shard: each shard
//! scans its slice plus the remote view, and the merge rule keeps the
//! verdict deterministic.

use ltpg_storage::{membership_partition, MEMBERSHIP_PARTITION_SHIFT};
use ltpg_txn::{declared_accesses, Txn};

use crate::partition::Partitioner;

/// Where a transaction must run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Exactly one shard; no merge round needed.
    Single(u32),
    /// Several (but not all) shards, ascending and deduplicated.
    Multi(Vec<u32>),
    /// Every shard participates.
    Broadcast,
}

impl Route {
    /// Does `shard` participate (out of `n` shards total)?
    pub fn includes(&self, shard: u32) -> bool {
        match self {
            Route::Single(s) => *s == shard,
            Route::Multi(v) => v.contains(&shard),
            Route::Broadcast => true,
        }
    }

    /// Number of participant shards (out of `n` total).
    pub fn participant_count(&self, n: u32) -> usize {
        match self {
            Route::Single(_) => 1,
            Route::Multi(v) => v.len(),
            Route::Broadcast => n as usize,
        }
    }

    /// Whether more than one shard participates.
    pub fn is_cross(&self) -> bool {
        !matches!(self, Route::Single(_))
    }
}

/// Classifies transactions against a [`Partitioner`].
#[derive(Debug, Clone)]
pub struct Router {
    part: Partitioner,
}

impl Router {
    /// A router over `part`.
    pub fn new(part: Partitioner) -> Self {
        Router { part }
    }

    /// The underlying partitioner.
    pub fn partitioner(&self) -> &Partitioner {
        &self.part
    }

    /// Compute the participant set of `txn`. Deterministic: depends only
    /// on the transaction's statically-declared key set and the
    /// partitioner rules (TIDs only enter through keys derived from
    /// `Src::Tid`, which the declaration pass folds like any constant).
    pub fn route(&self, txn: &Txn) -> Route {
        let Some(acc) = declared_accesses(txn) else {
            // Ordered scans: the key set is a predicate, not a list.
            return Route::Broadcast;
        };
        let n = self.part.shards();
        let mut parts: Vec<u32> = Vec::new();
        for &(t, k) in &acc.reads {
            if self.part.is_replicated(t) {
                continue; // every shard can serve the read locally
            }
            match membership_partition(k) {
                // A read of a membership marker key observes the partition
                // guard — it must run where that guard registers.
                Some(p) => parts.push(self.part.membership_owner(t, p)),
                None => parts.push(self.part.home(t, k)),
            }
        }
        for (t, k) in acc.all_writes() {
            if self.part.is_replicated(t) {
                // Every copy must apply the write.
                return Route::Broadcast;
            }
            parts.push(self.part.home(t, k));
        }
        for &(t, k) in acc.inserts.iter().chain(acc.deletes.iter()) {
            if !self.part.is_replicated(t) {
                parts.push(self.part.membership_owner(t, k >> MEMBERSHIP_PARTITION_SHIFT));
            }
        }
        parts.sort_unstable();
        parts.dedup();
        match parts.len() {
            // No partitioned-table access at all (e.g. reads of replicated
            // tables only): any shard works; pin shard 0 for determinism.
            0 => Route::Single(0),
            1 => Route::Single(parts[0]),
            l if l == n as usize => Route::Broadcast,
            _ => Route::Multi(parts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TableRule;
    use ltpg_storage::{ColId, TableId};
    use ltpg_txn::{IrOp, ProcId, Src};

    const A: TableId = TableId(0);
    const R: TableId = TableId(1);

    fn part4() -> Partitioner {
        Partitioner::new(4, TableRule::Stride { stride: 1 }).with_rule(R, TableRule::Replicated)
    }

    fn read(t: TableId, k: i64, out: u8) -> IrOp {
        IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out }
    }

    fn update(t: TableId, k: i64) -> IrOp {
        IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Const(1) }
    }

    #[test]
    fn single_multi_and_broadcast_are_classified() {
        let r = Router::new(part4());
        let single = Txn::new(ProcId(0), vec![], vec![read(A, 4, 0), update(A, 8)]);
        assert_eq!(r.route(&single), Route::Single(0));
        let multi = Txn::new(ProcId(0), vec![], vec![update(A, 1), update(A, 2)]);
        assert_eq!(r.route(&multi), Route::Multi(vec![1, 2]));
        let all = Txn::new(
            ProcId(0),
            vec![],
            vec![update(A, 0), update(A, 1), update(A, 2), update(A, 3)],
        );
        assert_eq!(r.route(&all), Route::Broadcast);
    }

    #[test]
    fn replicated_reads_are_free_but_writes_broadcast() {
        let r = Router::new(part4());
        let t = Txn::new(ProcId(0), vec![], vec![read(R, 7, 0), update(A, 5)]);
        assert_eq!(r.route(&t), Route::Single(1));
        let w = Txn::new(ProcId(0), vec![], vec![update(R, 7)]);
        assert_eq!(r.route(&w), Route::Broadcast);
        let ronly = Txn::new(ProcId(0), vec![], vec![read(R, 7, 0)]);
        assert_eq!(r.route(&ronly), Route::Single(0));
    }

    #[test]
    fn inserts_add_the_membership_owner() {
        // Stride 1 on table A: row home of key k is k mod 4; the membership
        // owner of partition 0 (all small keys) is home(0) = 0.
        let r = Router::new(part4());
        let t = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Insert { table: A, key: Src::Const(5), values: vec![Src::Const(0)] }],
        );
        assert_eq!(r.route(&t), Route::Multi(vec![0, 1]));
    }

    #[test]
    fn undeclarable_txns_broadcast() {
        let r = Router::new(part4());
        let t = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::RangeSum {
                table: A,
                lo: Src::Const(0),
                hi: Src::Const(10),
                col: ColId(0),
                out: 0,
            }],
        );
        assert_eq!(r.route(&t), Route::Broadcast);
    }
}
