//! Async ingestion front-end for LTPG (`ltpg-front`).
//!
//! The engine crates consume fully-formed batches; this crate is the layer
//! that *forms* them under load. An open-loop stream of per-client
//! submissions flows through four stages:
//!
//! 1. **Streamer** ([`streamer`]) — bounded per-client channels drained
//!    with deterministic round-robin fair queuing.
//! 2. **Admission** ([`admission`]) — per-client token-bucket rate limits
//!    plus global queue bounds; everything rejected is counted on an
//!    explicit shed path.
//! 3. **Batcher** ([`batcher`]) — deadline- *and* size-triggered sealing
//!    on the simulated clock. No wall-clock input anywhere: sealed
//!    boundaries are a deterministic function of seed + arrival schedule.
//! 4. **Dispatcher** ([`dispatch`]) — feeds sealed batches to
//!    [`LtpgServer`](ltpg::LtpgServer) or
//!    [`ShardedServer`](ltpg_shard::ShardedServer) ticks and resolves
//!    commits back to arrivals for end-to-end latency.
//!
//! The PR-5 conservation invariant extends end-to-end across all stages:
//! `committed + pending + shed == submitted`, where `pending` spans client
//! channels, the open batch, and dispatched-but-uncommitted work
//! (including aborted transactions awaiting deterministic re-execution).
//! [`FrontEnd::conserves`] checks it; `FRONT_*` telemetry mirrors every
//! bucket.

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod dispatch;
pub mod fleet;
pub mod stats;
pub mod streamer;

use std::sync::Arc;

use ltpg_telemetry::{names, Registry};
use ltpg_txn::Txn;

pub use admission::{Admission, RateLimit};
pub use batcher::{Batcher, SealTrigger, SealedBatch};
pub use dispatch::{Dispatcher, TickOutcome, TickSink};
pub use fleet::{Arrival, Fleet, FleetConfig};
pub use stats::FrontStats;
pub use streamer::{Pending, Streamer};

/// Front-end policy knobs. All times are simulated ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontConfig {
    /// Target batch size (size trigger).
    pub batch_size: usize,
    /// Maximum simulated ns the oldest member of an open batch may wait
    /// before the batch seals (deadline trigger).
    pub seal_deadline_ns: u64,
    /// Per-client channel capacity; a full channel sheds on the
    /// backpressure path.
    pub client_queue_cap: usize,
    /// Global bound on transactions queued ahead of sealing (channels +
    /// open batch); beyond it, arrivals shed on the queue-full path.
    pub max_queued: usize,
    /// The batcher pulls from the channels only while the engine backlog
    /// (steady clock) is strictly below this, letting queues fill and
    /// bounds bite under overload. `u64::MAX` disables the gate; `0`
    /// stops pulling entirely (a test hook).
    pub max_backlog_ns: u64,
    /// Optional per-client rate limit.
    pub per_client_rate: Option<RateLimit>,
    /// Optional cap on how long a submission may wait in its channel
    /// before it is shed on the timed-out path.
    pub queue_timeout_ns: Option<u64>,
    /// Buffer every tick's [`TickOutcome`] for differential replay.
    pub record_outcomes: bool,
}

impl FrontConfig {
    /// A permissive config: generous bounds, no rate limit, no timeout.
    pub fn new(batch_size: usize, seal_deadline_ns: u64) -> Self {
        FrontConfig {
            batch_size,
            seal_deadline_ns,
            client_queue_cap: 1 << 16,
            max_queued: 1 << 20,
            max_backlog_ns: u64::MAX,
            per_client_rate: None,
            queue_timeout_ns: None,
            record_outcomes: false,
        }
    }

    /// A config that can never shed: unbounded queues, no rate limit, no
    /// timeout, no backlog gate, and a deadline far beyond any schedule.
    /// Used by the QA differential runner to prove batch *formation* alone
    /// never changes commit decisions.
    pub fn lossless(batch_size: usize) -> Self {
        FrontConfig {
            batch_size,
            seal_deadline_ns: u64::MAX / 4,
            client_queue_cap: usize::MAX,
            max_queued: usize::MAX,
            max_backlog_ns: u64::MAX,
            per_client_rate: None,
            queue_timeout_ns: None,
            record_outcomes: true,
        }
    }
}

/// The assembled pipeline: streamer → admission → batcher → dispatcher
/// over a server `S`. Drive it with [`offer`](Self::offer) per arrival,
/// [`advance_to`](Self::advance_to) to pass idle simulated time, and
/// [`finish`](Self::finish) to flush and drain at end of run.
pub struct FrontEnd<S: TickSink> {
    cfg: FrontConfig,
    streamer: Streamer,
    admission: Admission,
    batcher: Batcher,
    dispatcher: Dispatcher<S>,
    stats: FrontStats,
    registry: Arc<Registry>,
    now_ns: u64,
}

impl<S: TickSink> FrontEnd<S> {
    /// Wrap a server with the given policy.
    pub fn new(sink: S, cfg: FrontConfig) -> Self {
        FrontEnd {
            streamer: Streamer::new(cfg.client_queue_cap),
            admission: Admission::new(cfg.per_client_rate),
            batcher: Batcher::new(cfg.batch_size, cfg.seal_deadline_ns),
            dispatcher: Dispatcher::new(sink, cfg.record_outcomes),
            stats: FrontStats::default(),
            registry: Arc::new(Registry::new()),
            now_ns: 0,
            cfg,
        }
    }

    /// One client submission at simulated time `at_ns` (times before the
    /// pipeline's current clock are clamped forward — the clock never runs
    /// backwards). Returns whether the transaction was admitted; `false`
    /// means it was shed (the exact path is counted in stats/telemetry).
    pub fn offer(&mut self, client: u32, at_ns: u64, txn: Txn) -> bool {
        let now = self.now_ns.max(at_ns);
        self.advance_to(now);
        self.stats.submitted += 1;
        self.registry.counter(names::FRONT_SUBMITTED).inc();
        if !self.admission.allow(client, now) {
            self.stats.shed_rate_limited += 1;
            self.registry.counter(names::FRONT_SHED_RATE_LIMITED).inc();
            return false;
        }
        if self.front_queued() >= self.cfg.max_queued {
            self.stats.shed_queue_full += 1;
            self.registry.counter(names::FRONT_SHED_QUEUE_FULL).inc();
            return false;
        }
        if !self.streamer.try_send(client, now, txn) {
            self.stats.shed_backpressure += 1;
            self.registry.counter(names::FRONT_SHED_BACKPRESSURE).inc();
            return false;
        }
        self.stats.admitted += 1;
        self.registry.counter(names::FRONT_ADMITTED).inc();
        self.pump(now);
        true
    }

    /// Advance the simulated clock to `target_ns`, firing any deadline
    /// seals that fall on the way.
    pub fn advance_to(&mut self, target_ns: u64) {
        while let Some(d) = self.batcher.deadline_at() {
            if d > target_ns {
                break;
            }
            // Time reaches the deadline: pump whatever unblocked by then
            // (which may size-seal and start a *new* open batch whose own
            // deadline is later — re-check before deadline-sealing it).
            self.pump(d);
            if self.batcher.deadline_at().is_some_and(|dd| dd <= d) {
                self.seal_and_dispatch(d, SealTrigger::Deadline);
            }
        }
        self.now_ns = self.now_ns.max(target_ns);
        self.pump(self.now_ns);
    }

    /// Flush the channels and open batch (ignoring the backlog gate) and
    /// drain the server, at the pipeline's current simulated time. Bounded
    /// by `max_ticks` drain ticks.
    pub fn finish(&mut self, max_ticks: usize) {
        let now = self.now_ns;
        while let Some(p) = self.streamer.pop_fair() {
            if let Some(sealed) = self.batcher.push(p, now) {
                self.dispatch_sealed(sealed);
            }
        }
        self.seal_and_dispatch(now, SealTrigger::Drain);
        for _ in 0..max_ticks {
            if !self.dispatcher.tick_at(now, &self.registry, &mut self.stats) {
                break;
            }
        }
        self.update_depth_gauge();
    }

    /// Move work from channels into the open batch while the engine
    /// backlog allows, sealing on size as batches fill.
    fn pump(&mut self, now_ns: u64) {
        self.dispatcher.catch_up(now_ns, &self.registry, &mut self.stats);
        if let Some(timeout) = self.cfg.queue_timeout_ns {
            let shed = self.streamer.shed_expired(now_ns.saturating_sub(timeout));
            if shed > 0 {
                self.stats.shed_timed_out += shed;
                self.registry.counter(names::FRONT_SHED_TIMED_OUT).add(shed);
            }
        }
        while self.dispatcher.backlog_ns(now_ns) < self.cfg.max_backlog_ns {
            let Some(p) = self.streamer.pop_fair() else { break };
            if let Some(sealed) = self.batcher.push(p, now_ns) {
                self.dispatch_sealed(sealed);
            }
        }
        self.update_depth_gauge();
    }

    /// Seal the open batch (if any) at `at_ns` and dispatch it.
    fn seal_and_dispatch(&mut self, at_ns: u64, trigger: SealTrigger) {
        if let Some(sealed) = self.batcher.seal(at_ns, trigger) {
            self.dispatch_sealed(sealed);
        }
    }

    fn dispatch_sealed(&mut self, sealed: SealedBatch) {
        self.stats.batches_sealed += 1;
        self.registry.counter(names::FRONT_BATCHES_SEALED).inc();
        let (field, name) = match sealed.trigger {
            SealTrigger::Size => (&mut self.stats.seals_size, names::FRONT_SEALS_SIZE),
            SealTrigger::Deadline => {
                (&mut self.stats.seals_deadline, names::FRONT_SEALS_DEADLINE)
            }
            SealTrigger::Drain => (&mut self.stats.seals_drain, names::FRONT_SEALS_DRAIN),
        };
        *field += 1;
        self.registry.counter(name).inc();
        self.registry.histogram(names::FRONT_BATCH_FILL).record(sealed.txns.len() as u64);
        self.dispatcher.dispatch(sealed.txns, sealed.at_ns, &self.registry, &mut self.stats);
    }

    fn update_depth_gauge(&self) {
        self.registry.gauge(names::FRONT_QUEUE_DEPTH).set(self.front_queued() as i64);
    }

    /// Transactions queued ahead of sealing (channels + open batch).
    pub fn front_queued(&self) -> usize {
        self.streamer.queued() + self.batcher.open_len()
    }

    /// Transactions anywhere in flight: channels, open batch, and
    /// dispatched-but-uncommitted (including requeued aborts).
    pub fn pending(&self) -> usize {
        self.front_queued() + self.dispatcher.in_flight()
    }

    /// The end-to-end conservation invariant (see [`FrontStats::conserves`]).
    pub fn conserves(&self) -> bool {
        self.stats.conserves(self.pending())
    }

    /// Cumulative front-end statistics.
    pub fn stats(&self) -> &FrontStats {
        &self.stats
    }

    /// The front-end's own metrics registry (`front.*` family). The
    /// wrapped server keeps its separate registry.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Digest over every sealed batch boundary (see
    /// [`Batcher::seal_digest`]).
    pub fn seal_digest(&self) -> u64 {
        self.batcher.seal_digest()
    }

    /// The pipeline's current simulated time, ns.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Distinct clients seen so far.
    pub fn clients(&self) -> usize {
        self.streamer.clients()
    }

    /// The dispatcher (engine clocks, tick counts).
    pub fn dispatcher(&self) -> &Dispatcher<S> {
        &self.dispatcher
    }

    /// Take the buffered tick outcomes (see [`FrontConfig::record_outcomes`]).
    pub fn take_outcomes(&mut self) -> Vec<TickOutcome> {
        self.dispatcher.take_outcomes()
    }

    /// The wrapped server.
    pub fn sink(&self) -> &S {
        self.dispatcher.sink()
    }

    /// The wrapped server, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        self.dispatcher.sink_mut()
    }
}

impl<S: TickSink> std::fmt::Debug for FrontEnd<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("now_ns", &self.now_ns)
            .field("front_queued", &self.front_queued())
            .field("stats", &self.stats)
            .field("dispatcher", &self.dispatcher)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg::{LtpgConfig, LtpgServer, ServerConfig};
    use ltpg_storage::{ColId, Database, TableBuilder, TableId};
    use ltpg_txn::{IrOp, ProcId, Src, Tid};

    const T: TableId = TableId(0);

    fn db(keys: i64) -> Database {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a"]).capacity(1024).build());
        assert_eq!(t, T);
        for k in 0..keys {
            db.table(T).insert(k, &[k]).unwrap();
        }
        db
    }

    fn write_txn(key: i64, val: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Update { table: T, key: Src::Const(key), col: ColId(0), val: Src::Const(val) }],
        )
    }

    fn server(batch: usize) -> LtpgServer {
        LtpgServer::new(
            db(64),
            LtpgConfig::default(),
            ServerConfig { batch_size: batch, pipelined: false, ..ServerConfig::default() },
        )
    }

    #[test]
    fn size_sealing_commits_everything_and_conserves() {
        let mut fe = FrontEnd::new(server(8), FrontConfig::new(8, 1_000_000));
        for i in 0..40i64 {
            assert!(fe.offer((i % 5) as u32, i as u64 * 100, write_txn(i % 64, i)));
        }
        fe.finish(64);
        let s = fe.stats().clone();
        assert_eq!(s.submitted, 40);
        assert_eq!(s.admitted, 40);
        assert_eq!(s.committed, 40);
        assert_eq!(s.shed(), 0);
        assert_eq!(s.seals_size, 5, "40 txns / batch 8 = 5 size seals");
        assert!(fe.conserves());
        assert_eq!(fe.pending(), 0);
    }

    #[test]
    fn deadline_seals_partial_batches() {
        let mut fe = FrontEnd::new(server(64), FrontConfig::new(64, 1_000));
        fe.offer(0, 0, write_txn(1, 1));
        fe.offer(1, 200, write_txn(2, 2));
        // Nothing sealed yet: under size, before deadline.
        assert_eq!(fe.stats().batches_sealed, 0);
        fe.advance_to(5_000);
        let s = fe.stats();
        assert_eq!(s.seals_deadline, 1, "deadline at t=1000 must have sealed");
        assert_eq!(s.committed, 2);
        assert!(fe.conserves());
    }

    #[test]
    fn rate_limit_and_channel_caps_shed_deterministically() {
        let mut cfg = FrontConfig::new(4, 1_000_000);
        cfg.client_queue_cap = 2;
        cfg.max_backlog_ns = 0; // engine always "busy": nothing leaves the channels
        cfg.per_client_rate = Some(RateLimit { rate_tps: 1.0, burst: 1.0 });
        let mut fe = FrontEnd::new(server(4), cfg);
        assert!(fe.offer(0, 0, write_txn(1, 1)));
        assert!(!fe.offer(0, 0, write_txn(2, 2)), "second burst-1 arrival rate-limits");
        let s = fe.stats();
        assert_eq!(s.shed_rate_limited, 1);
        assert!(fe.conserves());
    }

    #[test]
    fn timeout_sheds_stale_queued_work() {
        let mut cfg = FrontConfig::new(4, u64::MAX / 4);
        cfg.max_backlog_ns = 0; // hold everything in the channels
        cfg.queue_timeout_ns = Some(1_000);
        let mut fe = FrontEnd::new(server(4), cfg);
        fe.offer(0, 0, write_txn(1, 1));
        fe.offer(0, 10_000, write_txn(2, 2));
        let s = fe.stats();
        assert_eq!(s.shed_timed_out, 1, "t=0 arrival outlived the 1µs timeout");
        assert!(fe.conserves());
    }

    #[test]
    fn fair_queuing_prevents_hog_monopoly() {
        // A hog floods its channel while the backlog gate holds the pump
        // shut; a polite client submits once. When the gate opens, the
        // round-robin drain puts the polite txn in the *first* sealed
        // batch instead of behind the hog's backlog.
        let mut cfg = FrontConfig::new(4, u64::MAX / 4);
        cfg.max_backlog_ns = 0;
        cfg.record_outcomes = true;
        let mut fe = FrontEnd::new(server(4), cfg);
        for i in 0..8i64 {
            fe.offer(0, 0, write_txn(i, i));
        }
        fe.offer(1, 0, write_txn(60, 60));
        assert_eq!(fe.front_queued(), 9, "gate must hold everything upstream");
        fe.cfg.max_backlog_ns = u64::MAX;
        fe.advance_to(1);
        // Drain order is hog, polite, hog, hog — the polite txn is the
        // second fresh admission, so it carries TID 2.
        let outcomes = fe.take_outcomes();
        assert!(
            outcomes.first().is_some_and(|o| o.committed.contains(&Tid(2))),
            "polite client's txn must commit in the first batch: {outcomes:?}"
        );
        assert!(fe.conserves());
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let mut fe = FrontEnd::new(server(8), FrontConfig::new(8, 1_000));
        for i in 0..20i64 {
            fe.offer((i % 3) as u32, i as u64 * 50, write_txn(i % 64, i));
        }
        fe.advance_to(10_000);
        fe.finish(32);
        let reg = fe.telemetry();
        let s = fe.stats();
        assert_eq!(reg.counter_value(names::FRONT_SUBMITTED), s.submitted);
        assert_eq!(reg.counter_value(names::FRONT_ADMITTED), s.admitted);
        assert_eq!(reg.counter_value(names::FRONT_COMMITTED), s.committed);
        assert_eq!(reg.counter_value(names::FRONT_BATCHES_SEALED), s.batches_sealed);
        let shed_total: u64 =
            names::FRONT_SHED_COUNTERS.iter().map(|n| reg.counter_value(n)).sum();
        assert_eq!(shed_total, s.shed());
        assert_eq!(reg.histogram(names::FRONT_E2E_NS).snapshot().count, s.committed);
    }
}
