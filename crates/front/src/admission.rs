//! Per-client rate limiting on the simulated clock.
//!
//! Each client gets a token bucket refilled at a configured rate in
//! simulated time. Buckets are created on first use and touched only by
//! their own client's arrivals, so the admit/shed decision sequence is a
//! pure function of the arrival schedule (IEEE f64 arithmetic is
//! deterministic across debug/release).

use std::collections::HashMap;

/// A per-client rate limit: sustained `rate_tps` with bursts up to
/// `burst` back-to-back admissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admissions per simulated second.
    pub rate_tps: f64,
    /// Bucket capacity (maximum burst size), in transactions.
    pub burst: f64,
}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last_ns: u64,
}

/// Admission control: lazily-created token buckets keyed by client id.
#[derive(Debug, Default)]
pub struct Admission {
    limit: Option<RateLimit>,
    buckets: HashMap<u32, TokenBucket>,
}

impl Admission {
    /// Create with an optional per-client limit (`None` admits everything).
    pub fn new(limit: Option<RateLimit>) -> Self {
        Admission { limit, buckets: HashMap::new() }
    }

    /// Whether `client`'s arrival at simulated time `now_ns` is within its
    /// rate limit. Consumes a token on success.
    pub fn allow(&mut self, client: u32, now_ns: u64) -> bool {
        let Some(limit) = self.limit else { return true };
        let b = self
            .buckets
            .entry(client)
            .or_insert(TokenBucket { tokens: limit.burst, last_ns: now_ns });
        let dt_s = now_ns.saturating_sub(b.last_ns) as f64 / 1e9;
        b.tokens = (b.tokens + dt_s * limit.rate_tps).min(limit.burst);
        b.last_ns = now_ns;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let mut a = Admission::new(None);
        for i in 0..1000 {
            assert!(a.allow(0, i));
        }
    }

    #[test]
    fn burst_then_refill_at_rate() {
        // 10 tps, burst 2: two immediate admissions, third denied, then one
        // more token every 100 ms of simulated time.
        let mut a = Admission::new(Some(RateLimit { rate_tps: 10.0, burst: 2.0 }));
        assert!(a.allow(1, 0));
        assert!(a.allow(1, 0));
        assert!(!a.allow(1, 0));
        assert!(!a.allow(1, 50_000_000));
        assert!(a.allow(1, 150_000_000));
        assert!(!a.allow(1, 150_000_000));
    }

    #[test]
    fn buckets_are_per_client() {
        let mut a = Admission::new(Some(RateLimit { rate_tps: 1.0, burst: 1.0 }));
        assert!(a.allow(1, 0));
        assert!(!a.allow(1, 0));
        assert!(a.allow(2, 0), "client 2 has its own bucket");
    }
}
