//! The dispatcher stage: feeds sealed batches to a server and accounts
//! end-to-end latency on two engine clocks.
//!
//! **Two clocks.** The dispatcher tracks when the engine frees up on a
//! *steady* clock (`free_ns`, excluding fault-induced delay: retry
//! backoff pauses and in-place download-retry penalties) and an *actual*
//! clock (`free_actual_ns`, including it). Admission control,
//! backpressure, and catch-up ticking read the steady clock, so injected
//! device transients — which are absorbed by retry and never change
//! commit decisions — also never change seal boundaries, shed decisions,
//! or batch composition. Latency histograms read the actual clock, so
//! transients are visible where they belong: in the tail.
//!
//! **TID mirroring.** Servers assign fresh TIDs monotonically in inbox
//! FIFO order, so the dispatcher mirrors the server's TID counter at
//! submission time ([`TickSink::next_tid`]) and maps each expected TID to
//! its arrival timestamp. Commit notifications then resolve to arrivals
//! without any side channel through the engine. Aborted transactions keep
//! their sticky TID and stay mapped until they eventually commit.

use std::collections::HashMap;
use std::sync::Arc;

use ltpg::LtpgServer;
use ltpg_shard::ShardedServer;
use ltpg_telemetry::{names, Registry};
use ltpg_txn::{Tid, Txn};

use crate::stats::FrontStats;

/// What one server tick did, in a server-shape-independent form.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome {
    /// TIDs committed this tick (ascending).
    pub committed: Vec<Tid>,
    /// TIDs aborted this tick (scheduled for re-execution).
    pub aborted: Vec<Tid>,
    /// Simulated tick latency, ns (includes retry backoff).
    pub sim_ns: f64,
}

/// The server shapes the dispatcher can feed. Implemented for
/// [`LtpgServer`] and [`ShardedServer`].
pub trait TickSink {
    /// Enqueue transactions into the server inbox (FIFO).
    fn submit_batch(&mut self, txns: Vec<Txn>);
    /// Run one tick; `None` when fully idle.
    fn tick_outcome(&mut self) -> Option<TickOutcome>;
    /// Transactions waiting inside the server (inbox + requeued aborts).
    fn queued(&self) -> usize;
    /// The TID the next fresh admission will receive (see module docs).
    fn next_tid(&self) -> u64;
    /// Cumulative simulated fault-induced delay charged so far, ns:
    /// retry backoff pauses plus in-place download-retry penalties. The
    /// dispatcher subtracts its per-tick delta from the steady clock.
    fn fault_delay_ns(&self) -> f64;
    /// The server's metrics registry.
    fn registry(&self) -> Arc<Registry>;
}

impl TickSink for LtpgServer {
    fn submit_batch(&mut self, txns: Vec<Txn>) {
        self.submit_all(txns);
    }

    fn tick_outcome(&mut self) -> Option<TickOutcome> {
        self.tick().map(|s| TickOutcome {
            committed: s.committed,
            aborted: s.aborted,
            sim_ns: s.sim_ns,
        })
    }

    fn queued(&self) -> usize {
        self.pending()
    }

    fn next_tid(&self) -> u64 {
        LtpgServer::next_tid(self)
    }

    fn fault_delay_ns(&self) -> f64 {
        (self.telemetry().counter_value(names::FAULT_BACKOFF_NS)
            + self.telemetry().counter_value(names::FAULT_RETRY_PENALTY_NS)) as f64
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(self.telemetry())
    }
}

impl TickSink for ShardedServer {
    fn submit_batch(&mut self, txns: Vec<Txn>) {
        self.submit_all(txns);
    }

    fn tick_outcome(&mut self) -> Option<TickOutcome> {
        self.tick().map(|s| TickOutcome {
            committed: s.committed,
            aborted: s.aborted,
            sim_ns: s.sim_ns,
        })
    }

    fn queued(&self) -> usize {
        self.pending()
    }

    fn next_tid(&self) -> u64 {
        ShardedServer::next_tid(self)
    }

    fn fault_delay_ns(&self) -> f64 {
        // Fault delay is charged on the failing shard's private registry.
        (0..self.shard_count())
            .map(|s| {
                let reg = self.shard_telemetry(s);
                reg.counter_value(names::FAULT_BACKOFF_NS)
                    + reg.counter_value(names::FAULT_RETRY_PENALTY_NS)
            })
            .sum::<u64>() as f64
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(self.telemetry())
    }
}

/// Feeds sealed batches into a [`TickSink`], one tick per seal, and
/// resolves commit notifications back to arrival timestamps.
pub struct Dispatcher<S: TickSink> {
    sink: S,
    next_tid: u64,
    /// Expected TID → simulated arrival ns, for every dispatched but not
    /// yet committed transaction (includes requeued aborts).
    in_flight: HashMap<u64, u64>,
    free_ns: f64,
    free_actual_ns: f64,
    ticks: u64,
    outcomes: Option<Vec<TickOutcome>>,
}

impl<S: TickSink> Dispatcher<S> {
    /// Wrap a server. With `record_outcomes`, every tick's
    /// [`TickOutcome`] is buffered for later inspection (the QA
    /// differential runner replays them tick-for-tick against a directly
    /// fed server).
    pub fn new(sink: S, record_outcomes: bool) -> Self {
        let next_tid = sink.next_tid();
        Dispatcher {
            sink,
            next_tid,
            in_flight: HashMap::new(),
            free_ns: 0.0,
            free_actual_ns: 0.0,
            ticks: 0,
            outcomes: record_outcomes.then(Vec::new),
        }
    }

    /// Simulated ns of engine backlog at `now_ns` on the steady
    /// (backoff-excluded) clock: how far in the future the engine frees up.
    pub fn backlog_ns(&self, now_ns: u64) -> u64 {
        (self.free_ns - now_ns as f64).max(0.0) as u64
    }

    /// Submit a sealed batch's members (recording queue-wait per member)
    /// and run exactly one tick at `at_ns`.
    pub fn dispatch(
        &mut self,
        members: Vec<crate::streamer::Pending>,
        at_ns: u64,
        reg: &Registry,
        stats: &mut FrontStats,
    ) {
        let mut txns = Vec::with_capacity(members.len());
        for p in members {
            reg.histogram(names::FRONT_QUEUE_WAIT_NS)
                .record(at_ns.saturating_sub(p.arrive_ns));
            self.in_flight.insert(self.next_tid, p.arrive_ns);
            self.next_tid += 1;
            txns.push(p.txn);
        }
        self.sink.submit_batch(txns);
        let ticked = self.tick_at(at_ns, reg, stats);
        debug_assert!(ticked, "a tick after a non-empty submit cannot be idle");
    }

    /// Run one tick at simulated time `at_ns`, advancing both engine
    /// clocks and resolving commits. Returns `false` when the server was
    /// fully idle (no tick happened).
    pub fn tick_at(&mut self, at_ns: u64, reg: &Registry, stats: &mut FrontStats) -> bool {
        let fault_before = self.sink.fault_delay_ns();
        let Some(out) = self.sink.tick_outcome() else {
            return false;
        };
        let fault_delay = (self.sink.fault_delay_ns() - fault_before).max(0.0);
        let steady_ns = (out.sim_ns - fault_delay).max(0.0);
        self.free_ns = self.free_ns.max(at_ns as f64) + steady_ns;
        self.free_actual_ns = self.free_actual_ns.max(at_ns as f64) + out.sim_ns;
        for tid in &out.committed {
            if let Some(arrive) = self.in_flight.remove(&tid.0) {
                reg.histogram(names::FRONT_E2E_NS)
                    .record_ns((self.free_actual_ns - arrive as f64).max(0.0));
                stats.committed += 1;
                reg.counter(names::FRONT_COMMITTED).inc();
            }
        }
        stats.abort_events += out.aborted.len() as u64;
        self.ticks += 1;
        if let Some(buf) = self.outcomes.as_mut() {
            buf.push(out);
        }
        true
    }

    /// Service queued server work as simulated time passes: while the
    /// engine frees up before `now_ns` (steady clock) and the server still
    /// holds work, run ticks back-to-back at the engine's own free time.
    ///
    /// Without this, a tick whose batch assembly was partly occupied by
    /// requeued aborts leaves fresh inbox work stranded until the *next*
    /// seal, and the backlog grows without bound under open-loop load.
    /// Gating on the steady clock keeps the tick pattern — and therefore
    /// batch composition — invariant under injected device transients.
    /// Does nothing when time has not advanced past the engine's free
    /// point, so a schedule driven entirely at one instant (the QA
    /// lockstep runs) keeps its exact one-tick-per-seal sequence.
    pub fn catch_up(&mut self, now_ns: u64, reg: &Registry, stats: &mut FrontStats) {
        while self.sink.queued() > 0 && self.free_ns < now_ns as f64 {
            let before = self.free_ns;
            if !self.tick_at(0, reg, stats) {
                break;
            }
            if self.free_ns <= before {
                // A zero-cost tick can only be spinning delayed requeue
                // slots closer to due; leave those to later dispatches
                // rather than looping here.
                break;
            }
        }
    }

    /// Dispatched-but-uncommitted transactions (server queues plus
    /// requeued aborts).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Ticks driven so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// When the engine frees up on the steady (backoff-excluded) clock.
    pub fn engine_free_ns(&self) -> f64 {
        self.free_ns
    }

    /// When the engine frees up on the actual clock (backoff included).
    pub fn engine_free_actual_ns(&self) -> f64 {
        self.free_actual_ns
    }

    /// Take the buffered tick outcomes (empty unless constructed with
    /// `record_outcomes`).
    pub fn take_outcomes(&mut self) -> Vec<TickOutcome> {
        self.outcomes.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The wrapped server.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The wrapped server, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }
}

impl<S: TickSink> std::fmt::Debug for Dispatcher<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("in_flight", &self.in_flight.len())
            .field("ticks", &self.ticks)
            .field("free_ns", &self.free_ns)
            .field("free_actual_ns", &self.free_actual_ns)
            .finish()
    }
}
