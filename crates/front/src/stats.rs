//! Cumulative front-end counters and the end-to-end conservation check.

/// Cumulative ingestion statistics. Every transaction offered to the
/// front-end lands in exactly one terminal bucket (`committed` or one of
/// the shed counters) or is still in flight, which is what
/// [`conserves`](FrontStats::conserves) asserts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FrontStats {
    /// Transactions offered by clients (before any admission decision).
    pub submitted: u64,
    /// Transactions admitted past rate limiting and queue bounds.
    pub admitted: u64,
    /// Admitted transactions committed by the engine.
    pub committed: u64,
    /// Abort events observed downstream (a transaction may abort several
    /// times before committing; aborted work stays *pending* — sticky TIDs
    /// re-enter a later batch — so this is not a conservation bucket).
    pub abort_events: u64,
    /// Shed by a per-client rate limit.
    pub shed_rate_limited: u64,
    /// Shed because the client's bounded channel was full (the per-client
    /// backpressure signal).
    pub shed_backpressure: u64,
    /// Shed because the global unsealed-queue bound was reached.
    pub shed_queue_full: u64,
    /// Shed after waiting in a client channel longer than the queue
    /// timeout without being sealed.
    pub shed_timed_out: u64,
    /// Batches sealed (all triggers).
    pub batches_sealed: u64,
    /// Batches sealed by reaching the configured size.
    pub seals_size: u64,
    /// Batches sealed by the oldest member hitting the deadline.
    pub seals_deadline: u64,
    /// Batches force-sealed while draining at shutdown.
    pub seals_drain: u64,
}

impl FrontStats {
    /// Total transactions shed on any path.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited
            + self.shed_backpressure
            + self.shed_queue_full
            + self.shed_timed_out
    }

    /// The end-to-end conservation invariant, extending the engine-level
    /// `committed + pending + dropped == admitted` check upstream through
    /// the streamer and batcher: given `pending` transactions currently in
    /// flight anywhere in the pipeline (client channels, the open batch,
    /// dispatched-but-uncommitted — which includes aborted work awaiting
    /// re-execution), every submission is accounted for:
    ///
    /// `committed + pending + shed == submitted`
    pub fn conserves(&self, pending: usize) -> bool {
        self.committed + pending as u64 + self.shed() == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_sums_all_paths_and_conservation_balances() {
        let s = FrontStats {
            submitted: 100,
            admitted: 90,
            committed: 70,
            shed_rate_limited: 4,
            shed_backpressure: 3,
            shed_queue_full: 2,
            shed_timed_out: 1,
            ..FrontStats::default()
        };
        assert_eq!(s.shed(), 10);
        assert!(s.conserves(20));
        assert!(!s.conserves(19));
    }
}
