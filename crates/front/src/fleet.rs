//! Seeded open-loop client fleet: a Poisson arrival process whose clients
//! are drawn from a Zipf distribution, so per-client submission rates are
//! skewed (a few hot clients, a long tail) the way production front-ends
//! see them.
//!
//! Open-loop means clients do not wait for responses: arrivals keep
//! coming at the offered rate whether or not the pipeline sheds, which is
//! exactly the regime where admission control earns its keep. The
//! schedule is a pure function of the seed — reusing the fixed Devroye
//! sampler from `ltpg-workloads` for the skewed client draw.

use ltpg_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fleet shape and offered load.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of simulated clients (tens of thousands is the intended
    /// scale; the generator is lazy so this costs nothing up front).
    pub clients: u32,
    /// Aggregate offered load, transactions per simulated second.
    pub offered_tps: f64,
    /// Zipf skew of per-client rates (0 = uniform fleet).
    pub skew: f64,
    /// RNG seed for the arrival schedule.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { clients: 10_000, offered_tps: 1_000_000.0, skew: 1.1, seed: 7 }
    }
}

/// One arrival: which client submits at which simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Simulated arrival time, ns.
    pub at_ns: u64,
    /// Submitting client id (`0..clients`).
    pub client: u32,
}

/// Lazy arrival-schedule generator.
#[derive(Debug)]
pub struct Fleet {
    zipf: Zipf,
    rng: StdRng,
    now_ns: f64,
    mean_gap_ns: f64,
}

impl Fleet {
    /// Create a fleet from its config.
    pub fn new(cfg: FleetConfig) -> Self {
        let clients = cfg.clients.max(1);
        Fleet {
            zipf: Zipf::new(u64::from(clients), cfg.skew),
            rng: StdRng::seed_from_u64(cfg.seed),
            now_ns: 0.0,
            mean_gap_ns: 1e9 / cfg.offered_tps.max(1e-9),
        }
    }

    /// Draw the next arrival: exponential inter-arrival gap at the offered
    /// rate, client picked by the scrambled Zipf draw (so client ids are
    /// spread over the fleet while rank frequencies stay skewed).
    pub fn next_arrival(&mut self) -> Arrival {
        let u: f64 = self.rng.gen();
        // Inverse-CDF exponential; 1-u is in (0,1] so ln is finite.
        self.now_ns += -(1.0 - u).ln() * self.mean_gap_ns;
        let client = (self.zipf.sample_scrambled(&mut self.rng) - 1) as u32;
        Arrival { at_ns: self.now_ns as u64, client }
    }

    /// Draw the next `n` arrivals.
    pub fn schedule(&mut self, n: usize) -> Vec<Arrival> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FleetConfig { clients: 1_000, offered_tps: 5e6, skew: 1.1, seed: 42 };
        let a = Fleet::new(cfg).schedule(500);
        let b = Fleet::new(cfg).schedule(500);
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_near_offered_rate() {
        let cfg = FleetConfig { clients: 100, offered_tps: 1e6, skew: 0.0, seed: 1 };
        let sched = Fleet::new(cfg).schedule(10_000);
        assert!(sched.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let span_s = sched.last().unwrap().at_ns as f64 / 1e9;
        let rate = 10_000.0 / span_s;
        assert!((rate / 1e6 - 1.0).abs() < 0.1, "measured {rate:.0} tps vs 1e6 offered");
    }

    #[test]
    fn skew_concentrates_load_on_few_clients() {
        let cfg = FleetConfig { clients: 10_000, offered_tps: 1e6, skew: 1.2, seed: 3 };
        let sched = Fleet::new(cfg).schedule(20_000);
        let mut per_client: HashMap<u32, u64> = HashMap::new();
        for a in &sched {
            assert!(a.client < 10_000);
            *per_client.entry(a.client).or_default() += 1;
        }
        let mut counts: Vec<u64> = per_client.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.2 * 20_000.0,
            "top-10 clients should carry >20% of a skew-1.2 fleet, got {top10}"
        );
    }
}
