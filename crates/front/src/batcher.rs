//! The batcher stage: deadline- and size-triggered batch sealing on the
//! simulated clock.
//!
//! A batch seals when it reaches the configured size, or when its oldest
//! member has waited `seal_deadline_ns` — whichever comes first. Both
//! triggers read only simulated time and queue state, never the wall
//! clock, so sealed boundaries are a deterministic function of the seed
//! and arrival schedule. A running digest folds every boundary
//! (sequence, seal time, fill, trigger) so tests can pin determinism with
//! a single `u64`.

use crate::streamer::Pending;

/// Why a batch sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealTrigger {
    /// Reached the configured batch size.
    Size,
    /// Oldest member hit the seal deadline.
    Deadline,
    /// Force-sealed while draining the pipeline at shutdown.
    Drain,
}

/// A sealed batch headed for the dispatcher.
#[derive(Debug)]
pub struct SealedBatch {
    /// Sequence number (0-based, dense).
    pub seq: u64,
    /// Simulated seal timestamp, ns.
    pub at_ns: u64,
    /// What sealed it.
    pub trigger: SealTrigger,
    /// Members, in admission (streamer drain) order.
    pub txns: Vec<Pending>,
}

/// Accumulates admitted transactions into an open batch and decides when
/// to seal it.
#[derive(Debug)]
pub struct Batcher {
    batch_size: usize,
    deadline_ns: u64,
    open: Vec<Pending>,
    open_since: Option<u64>,
    seq: u64,
    digest: u64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Batcher {
    /// Create with the target batch size and the seal deadline.
    pub fn new(batch_size: usize, seal_deadline_ns: u64) -> Self {
        Batcher {
            batch_size: batch_size.max(1),
            deadline_ns: seal_deadline_ns,
            open: Vec::new(),
            open_since: None,
            seq: 0,
            digest: 0,
        }
    }

    /// Add one transaction to the open batch at simulated time `now_ns`.
    /// Seals and returns the batch if this push filled it.
    pub fn push(&mut self, p: Pending, now_ns: u64) -> Option<SealedBatch> {
        if self.open.is_empty() {
            self.open_since = Some(now_ns);
        }
        self.open.push(p);
        if self.open.len() >= self.batch_size {
            self.seal(now_ns, SealTrigger::Size)
        } else {
            None
        }
    }

    /// Absolute simulated time at which the open batch must seal, or
    /// `None` when no batch is open.
    pub fn deadline_at(&self) -> Option<u64> {
        self.open_since.map(|s| s.saturating_add(self.deadline_ns))
    }

    /// Seal the open batch at `at_ns`, or `None` if it is empty.
    pub fn seal(&mut self, at_ns: u64, trigger: SealTrigger) -> Option<SealedBatch> {
        if self.open.is_empty() {
            return None;
        }
        let txns = std::mem::take(&mut self.open);
        self.open_since = None;
        let seq = self.seq;
        self.seq += 1;
        // Fold the boundary into the digest: any change in when a batch
        // sealed, how full it was, why, or which submissions it contains,
        // changes the digest.
        for word in [seq, at_ns, txns.len() as u64, trigger as u64] {
            self.digest = splitmix(self.digest ^ word);
        }
        for p in &txns {
            self.digest = splitmix(self.digest ^ (u64::from(p.client) << 32) ^ p.arrive_ns);
        }
        Some(SealedBatch { seq, at_ns, trigger, txns })
    }

    /// Transactions currently in the open batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Number of batches sealed so far.
    pub fn sealed(&self) -> u64 {
        self.seq
    }

    /// Running digest over every sealed boundary (seq, time, fill,
    /// trigger). Equal digests ⇒ identical sealing histories.
    pub fn seal_digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_txn::{ProcId, Txn};

    fn p(at: u64) -> Pending {
        Pending { client: 0, arrive_ns: at, txn: Txn::new(ProcId(0), vec![], vec![]) }
    }

    #[test]
    fn size_trigger_seals_exactly_at_capacity() {
        let mut b = Batcher::new(3, 1_000);
        assert!(b.push(p(0), 0).is_none());
        assert!(b.push(p(1), 1).is_none());
        let sealed = b.push(p(2), 2).expect("third push seals");
        assert_eq!(sealed.trigger, SealTrigger::Size);
        assert_eq!(sealed.txns.len(), 3);
        assert_eq!(b.open_len(), 0);
        assert!(b.deadline_at().is_none());
    }

    #[test]
    fn deadline_tracks_oldest_member() {
        let mut b = Batcher::new(100, 1_000);
        assert!(b.deadline_at().is_none());
        b.push(p(40), 40);
        b.push(p(900), 900);
        assert_eq!(b.deadline_at(), Some(1_040), "deadline anchored to first member");
        let sealed = b.seal(1_040, SealTrigger::Deadline).unwrap();
        assert_eq!(sealed.txns.len(), 2);
        assert_eq!(sealed.at_ns, 1_040);
    }

    #[test]
    fn digest_distinguishes_histories() {
        let run = |times: &[u64]| {
            let mut b = Batcher::new(2, 1_000);
            for &t in times {
                b.push(p(t), t);
            }
            b.seal(2_000, SealTrigger::Drain);
            b.seal_digest()
        };
        assert_eq!(run(&[1, 2, 3]), run(&[1, 2, 3]), "same schedule, same digest");
        assert_ne!(run(&[1, 2, 3]), run(&[1, 5, 6]), "moved seal time changes digest");
        assert_ne!(run(&[1, 2, 3]), run(&[1, 2, 4]), "moved member arrival changes digest");
        assert_ne!(run(&[1, 2, 3]), run(&[1, 2]), "different fill changes digest");
    }

    #[test]
    fn sealing_empty_open_batch_is_a_no_op() {
        let mut b = Batcher::new(2, 1_000);
        assert!(b.seal(500, SealTrigger::Drain).is_none());
        assert_eq!(b.sealed(), 0);
        assert_eq!(b.seal_digest(), 0);
    }
}
