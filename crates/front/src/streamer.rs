//! The streamer stage: bounded per-client submission channels drained with
//! deterministic round-robin fair queuing.
//!
//! The container has no async runtime (and the pipeline is driven by the
//! *simulated* clock anyway), so a channel here is a bounded `VecDeque`
//! owned by the front-end and pumped synchronously at event times. The
//! observable semantics match an mpsc with `try_send`: a full channel
//! rejects the submission, which is the per-client backpressure signal.

use std::collections::{HashMap, VecDeque};

use ltpg_txn::Txn;

/// A transaction in flight through the front-end, tagged with its
/// submitting client and simulated arrival time.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Submitting client id.
    pub client: u32,
    /// Simulated arrival timestamp, ns.
    pub arrive_ns: u64,
    /// The transaction itself.
    pub txn: Txn,
}

/// Bounded per-client channels plus a deterministic round-robin drain
/// cursor. Clients are registered in first-seen order and the cursor only
/// ever walks that order, so the drain sequence is a pure function of the
/// submission schedule — no map-iteration or wall-clock nondeterminism.
#[derive(Debug)]
pub struct Streamer {
    cap: usize,
    /// Client ids in first-seen order (the round-robin ring).
    ring: Vec<u32>,
    index: HashMap<u32, usize>,
    queues: Vec<VecDeque<Pending>>,
    cursor: usize,
    queued: usize,
}

impl Streamer {
    /// Create with the given per-client channel capacity.
    pub fn new(per_client_cap: usize) -> Self {
        Streamer {
            cap: per_client_cap.max(1),
            ring: Vec::new(),
            index: HashMap::new(),
            queues: Vec::new(),
            cursor: 0,
            queued: 0,
        }
    }

    /// Try to enqueue a submission on `client`'s channel. Returns `false`
    /// (dropping the transaction) when the channel is full — the caller
    /// counts that as a backpressure shed.
    pub fn try_send(&mut self, client: u32, arrive_ns: u64, txn: Txn) -> bool {
        let slot = match self.index.get(&client) {
            Some(&s) => s,
            None => {
                let s = self.ring.len();
                self.ring.push(client);
                self.index.insert(client, s);
                self.queues.push(VecDeque::new());
                s
            }
        };
        if self.queues[slot].len() >= self.cap {
            return false;
        }
        self.queues[slot].push_back(Pending { client, arrive_ns, txn });
        self.queued += 1;
        true
    }

    /// Pop the next submission fairly: scan the client ring from the
    /// cursor, take the head of the first non-empty channel, and advance
    /// the cursor past it. One txn per client per turn keeps a hog client
    /// from monopolizing batch slots while its peers queue.
    pub fn pop_fair(&mut self) -> Option<Pending> {
        let n = self.ring.len();
        for step in 0..n {
            let slot = (self.cursor + step) % n;
            if let Some(p) = self.queues[slot].pop_front() {
                self.cursor = (slot + 1) % n;
                self.queued -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Shed every queued submission that arrived strictly before
    /// `cutoff_ns` (channels are FIFO, so expired entries are at the
    /// heads). Returns how many were shed.
    pub fn shed_expired(&mut self, cutoff_ns: u64) -> u64 {
        let mut shed = 0;
        for q in &mut self.queues {
            while q.front().is_some_and(|p| p.arrive_ns < cutoff_ns) {
                q.pop_front();
                shed += 1;
            }
        }
        self.queued -= shed as usize;
        shed
    }

    /// Total transactions queued across all channels.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Number of distinct clients seen so far.
    pub fn clients(&self) -> usize {
        self.ring.len()
    }

    /// Whether every channel is empty.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_txn::ProcId;

    fn t() -> Txn {
        Txn::new(ProcId(0), vec![], vec![])
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let mut s = Streamer::new(8);
        for i in 0..3 {
            assert!(s.try_send(7, i, t()));
        }
        for i in 0..3 {
            assert!(s.try_send(9, 10 + i, t()));
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop_fair()).map(|p| p.client).collect();
        assert_eq!(order, vec![7, 9, 7, 9, 7, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn full_channel_rejects_without_affecting_peers() {
        let mut s = Streamer::new(2);
        assert!(s.try_send(1, 0, t()));
        assert!(s.try_send(1, 1, t()));
        assert!(!s.try_send(1, 2, t()), "third submission must hit the cap");
        assert!(s.try_send(2, 3, t()), "peer channel unaffected");
        assert_eq!(s.queued(), 3);
    }

    #[test]
    fn shed_expired_takes_only_old_heads() {
        let mut s = Streamer::new(8);
        s.try_send(1, 5, t());
        s.try_send(1, 50, t());
        s.try_send(2, 7, t());
        assert_eq!(s.shed_expired(10), 2);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.pop_fair().unwrap().arrive_ns, 50);
    }
}
