//! End-to-end proof that the harness catches real engine bugs: arm the
//! engine's deliberate WAW blind spot (`qa-inject` feature), fuzz until the
//! differential runner flags a divergence, shrink it, and check the
//! minimized repro is small, persists through the repro format, and
//! cleanly separates "buggy engine" from "bad case" (it diverges armed,
//! runs clean disarmed).
//!
//! This file is one test on purpose: the injection flag is process-global,
//! and a sibling test running concurrently would observe it armed.

#![cfg(feature = "qa-inject")]

#[test]
fn injected_waw_blind_spot_is_caught_shrunk_and_reproducible() {
    ltpg::qa_inject::set_waw_blind_spot(true);
    let mut found = None;
    for seed in 0..200u64 {
        let case = ltpg_qa::gen::generate(seed);
        if ltpg_qa::run_case(&case).is_err() {
            found = Some((seed, case));
            break;
        }
    }
    let (seed, case) =
        found.expect("WAW blind spot went undetected across 200 generated cases");

    let shrunk = ltpg_qa::shrink(&case).expect("divergent case must shrink");
    assert!(
        shrunk.case.txns.len() <= 8,
        "seed {seed}: minimized repro has {} transactions (want <= 8) after {} steps:\n{}",
        shrunk.case.txns.len(),
        shrunk.steps,
        ltpg_qa::repro::to_text(&shrunk.case),
    );

    // The repro survives serialization and still reproduces the bug.
    let dir = std::env::temp_dir().join(format!("ltpg-qa-inject-{}", std::process::id()));
    let path = dir.join("waw-blind-spot.repro");
    ltpg_qa::repro::write_file(&path, &shrunk.case).expect("write repro");
    let reloaded = ltpg_qa::repro::load_file(&path).expect("parse repro back");
    assert_eq!(reloaded, shrunk.case, "repro round-trip changed the case");
    assert!(
        ltpg_qa::run_case(&reloaded).is_err(),
        "reloaded repro no longer diverges with the bug armed"
    );

    // Disarmed, the same case runs clean: the divergence is the engine's
    // fault, not the case's.
    ltpg::qa_inject::set_waw_blind_spot(false);
    ltpg_qa::run_case(&reloaded)
        .unwrap_or_else(|d| panic!("repro diverges even without the injected bug: {d}"));
    std::fs::remove_dir_all(&dir).ok();
}
