//! The differential runner: one [`QaCase`](crate::QaCase), four execution
//! paths, byte-level agreement or a typed [`Divergence`].
//!
//! Three passes per case:
//!
//! 1. **Engine pass** — the batches run through [`LtpgEngine`] and the
//!    [`CpuFallbackEngine`] twin in parallel (no re-execution): commit
//!    sets must match batch-for-batch, the serializability oracle must
//!    accept every committed set against the pre-batch snapshot, and the
//!    final state digests must be bit-identical.
//! 2. **Server pass** — a single-device [`LtpgServer`] and a
//!    [`ShardedServer`] (with the case's partitioner and optional
//!    mid-run shard loss) tick in lockstep over the identical stream:
//!    per-tick commit/abort TID sequences must agree, and every shard's
//!    final slice must equal the single device's database restricted to
//!    that shard's ownership predicate. Ticks are capped, not drained:
//!    schedules that re-queue a doomed transaction forever (duplicate-key
//!    inserts) still compare exactly over the executed prefix.
//! 3. **Durability pass** — the single server's WAL is replayed from the
//!    last checkpoint; the recovered database must digest-match the live
//!    one.
//!
//! Cases with `via_front` add a fourth pass through the ingestion
//! front-end, and cases with `via_schedulers` a fifth: the Block-STM and
//! address-graph schedulers against a serial TID-order replay and the
//! ordered-serializability oracle. Cases with `via_rebalance` add a
//! sixth: the sharded pass replayed with one mid-stream rebalance plan,
//! whose batch-boundary cutover must be invisible to the commit history.
//!
//! The whole case runs under `catch_unwind`: an engine panic on generated
//! input is itself a reportable (and shrinkable) divergence, not a harness
//! crash.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ltpg::{LtpgEngine, LtpgServer};
use ltpg_baselines::{AddrGraphEngine, BlockStmEngine, CpuFallbackEngine};
use ltpg_txn::oracle::{check_ordered_serializable, check_snapshot_serializable};
use ltpg_txn::{execute_serial, Batch, BatchEngine, Tid, TidGen, Txn};

use crate::QaCase;

/// How two execution paths disagreed on a case.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Two paths committed different TID sets for the same batch/tick.
    CommitSet {
        /// Which comparison failed (e.g. `engine-vs-cpu`, `sharded-vs-single`).
        site: String,
        /// Batch (engine pass) or tick (server pass) index.
        step: usize,
        /// What the reference path decided.
        expected: Vec<u64>,
        /// What the path under comparison decided.
        got: Vec<u64>,
    },
    /// Final state digests differ.
    Digest {
        /// Which comparison failed.
        site: String,
        /// Reference digest.
        expected: u64,
        /// Diverging digest.
        got: u64,
    },
    /// The serializability oracle rejected a committed set.
    Oracle {
        /// Batch index within the engine pass.
        step: usize,
        /// The oracle's violation, rendered.
        violation: String,
    },
    /// The sharded and single-device servers fell out of lockstep.
    Lockstep {
        /// Tick index.
        step: usize,
        /// What differed.
        detail: String,
    },
    /// A shard's final slice does not equal the single device's restriction.
    ShardSlice {
        /// The diverging shard.
        shard: u32,
        /// Digest of the single device's slice.
        expected: u64,
        /// Digest of the shard's database.
        got: u64,
    },
    /// WAL replay reconstructed a different database than the live one.
    WalReplay {
        /// What went wrong (digest pair or recovery error).
        detail: String,
    },
    /// An execution path panicked on the case.
    Panic {
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The ingestion front-end misbehaved structurally on a lossless
    /// config (shed a transaction or broke the conservation invariant).
    FrontPipeline {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::CommitSet { site, step, expected, got } => write!(
                f,
                "commit-set divergence at {site} step {step}: expected {expected:?}, got {got:?}"
            ),
            Divergence::Digest { site, expected, got } => write!(
                f,
                "state-digest divergence at {site}: expected {expected:#018x}, got {got:#018x}"
            ),
            Divergence::Oracle { step, violation } => {
                write!(f, "oracle violation at batch {step}: {violation}")
            }
            Divergence::Lockstep { step, detail } => {
                write!(f, "lockstep divergence at tick {step}: {detail}")
            }
            Divergence::ShardSlice { shard, expected, got } => write!(
                f,
                "shard {shard} slice digest {got:#018x} != single-device slice {expected:#018x}"
            ),
            Divergence::WalReplay { detail } => write!(f, "WAL replay divergence: {detail}"),
            Divergence::Panic { detail } => write!(f, "execution path panicked: {detail}"),
            Divergence::FrontPipeline { detail } => {
                write!(f, "front-end pipeline divergence: {detail}")
            }
        }
    }
}

/// Summary of a case that ran clean.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Transactions the engine pass committed.
    pub engine_committed: usize,
    /// Transactions the server pass committed (re-executions count once).
    pub server_committed: u64,
    /// Server-pass ticks executed.
    pub ticks: usize,
    /// Whether both servers fully drained within the tick cap (schedules
    /// with permanently re-queued user aborts legitimately do not).
    pub drained: bool,
    /// Ticks the front-end pass drove (0 unless the case sets `via_front`).
    pub front_ticks: usize,
    /// Transactions the scheduler pass committed on each competing
    /// scheduler (0 unless the case sets `via_schedulers`).
    pub scheduler_committed: usize,
    /// Whether the rebalance pass reached its cutover and swapped the
    /// topology mid-stream (always false unless the case sets
    /// `via_rebalance`; short schedules may drain before the cutover).
    pub rebalance_applied: bool,
}

fn tids(v: &[Tid]) -> Vec<u64> {
    v.iter().map(|t| t.0).collect()
}

/// Run every execution path of `case`, returning the first divergence.
pub fn run_case(case: &QaCase) -> Result<CaseOutcome, Divergence> {
    match catch_unwind(AssertUnwindSafe(|| run_case_inner(case))) {
        Ok(r) => r,
        Err(p) => {
            let detail = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Divergence::Panic { detail })
        }
    }
}

fn run_case_inner(case: &QaCase) -> Result<CaseOutcome, Divergence> {
    let mut outcome = CaseOutcome::default();
    engine_pass(case, &mut outcome)?;
    server_pass(case, &mut outcome)?;
    if case.via_front {
        front_pass(case, &mut outcome)?;
    }
    if case.via_schedulers {
        scheduler_pass(case, &mut outcome)?;
    }
    if case.via_rebalance && case.shards > 1 {
        rebalance_pass(case, &mut outcome)?;
    }
    Ok(outcome)
}

/// Pass 1: GPU engine vs CPU fallback twin vs the oracle, batch by batch.
fn engine_pass(case: &QaCase, outcome: &mut CaseOutcome) -> Result<(), Divergence> {
    let cfg = case.engine_config();
    let db = case.build_database();
    let mut gpu = LtpgEngine::new(db.deep_clone(), cfg.clone());
    let mut cpu = CpuFallbackEngine::new(db, cfg.fallback_config());
    let mut tidgen = TidGen::new();
    for (step, chunk) in case.batches().enumerate() {
        let pre = gpu.database().deep_clone();
        let batch = Batch::assemble(Vec::new(), chunk.to_vec(), &mut tidgen);
        let grep = gpu.execute_batch_report(&batch).report;
        let crep = cpu.execute_batch(&batch);
        if grep.committed != crep.committed {
            return Err(Divergence::CommitSet {
                site: "engine-vs-cpu".into(),
                step,
                expected: tids(&grep.committed),
                got: tids(&crep.committed),
            });
        }
        let committed: Vec<&Txn> = grep
            .committed
            .iter()
            .map(|t| batch.by_tid(*t).expect("committed tid in batch"))
            .collect();
        outcome.engine_committed += committed.len();
        check_snapshot_serializable(&pre, &committed, gpu.database()).map_err(|v| {
            Divergence::Oracle { step, violation: format!("{v:?}") }
        })?;
    }
    let (gd, cd) = (gpu.database().state_digest(), cpu.database().state_digest());
    if gd != cd {
        return Err(Divergence::Digest { site: "engine-vs-cpu".into(), expected: gd, got: cd });
    }
    Ok(())
}

/// Pass 2 + 3: single vs sharded server lockstep, slice digests, WAL replay.
fn server_pass(case: &QaCase, outcome: &mut CaseOutcome) -> Result<(), Divergence> {
    let cfg = case.engine_config();
    let scfg = case.server_config();
    let db = case.build_database();
    let part = case.partitioner();
    let mut single = LtpgServer::new(db.deep_clone(), cfg.clone(), scfg.clone());
    let mut sharded = ltpg_shard::ShardedServer::new(db, part.clone(), cfg.clone(), scfg);
    if case.standbys > 0 {
        // Replicated chaos schedule: a `fail_shard` loss now promotes a
        // warm standby row instead of degrading to the CPU twin. Every
        // assertion below is unchanged — failover must be invisible.
        sharded.attach_replicas(&ltpg_replica::ReplicaConfig {
            standbys: case.standbys as usize,
            ..ltpg_replica::ReplicaConfig::default()
        });
    }
    single.submit_all(case.txns.iter().cloned());
    sharded.submit_all(case.txns.iter().cloned());

    // Enough ticks to drain any schedule that *can* drain (re-entry delay
    // ≤ 2 and min-TID winners guarantee progress), while bounding
    // schedules that re-queue a doomed transaction forever.
    let max_ticks = (case.txns.len() / case.batch_size.max(1) + 2) * 12 + 16;
    let mut drained = false;
    let mut ticks = 0usize;
    for tick in 0..max_ticks {
        if let Some((s, after)) = case.fail_shard {
            if tick as u32 == after && s < sharded.shard_count() {
                sharded.force_shard_failure(s);
            }
        }
        let a = sharded.tick();
        let b = single.tick();
        ticks = tick + 1;
        match (&a, &b) {
            (Some(sa), Some(sb)) => {
                if sa.committed != sb.committed || sa.aborted != sb.aborted {
                    return Err(Divergence::Lockstep {
                        step: tick,
                        detail: format!(
                            "sharded committed {:?} aborted {:?}; single committed {:?} aborted {:?}",
                            tids(&sa.committed),
                            tids(&sa.aborted),
                            tids(&sb.committed),
                            tids(&sb.aborted)
                        ),
                    });
                }
            }
            (None, None) => {}
            _ => {
                return Err(Divergence::Lockstep {
                    step: tick,
                    detail: format!(
                        "one server idle before the other (sharded idle: {}, single idle: {})",
                        a.is_none(),
                        b.is_none()
                    ),
                });
            }
        }
        if a.is_none() && b.is_none() && sharded.pending() == 0 && single.pending() == 0 {
            drained = true;
            break;
        }
    }
    outcome.ticks = ticks;
    outcome.drained = drained;
    outcome.server_committed = single.stats().committed;

    // Every shard's slice must equal the single device's restriction.
    for s in 0..sharded.shard_count() {
        let expected =
            single.database().partition_clone(part.slice_pred(s)).state_digest();
        let got = sharded.database(s).state_digest();
        if expected != got {
            return Err(Divergence::ShardSlice { shard: s, expected, got });
        }
    }

    // Pass 3: WAL-replay equivalence on the single device.
    match single.simulate_recovery(cfg) {
        Ok(recovered) => {
            let live = single.database().state_digest();
            let rec = recovered.state_digest();
            if live != rec {
                return Err(Divergence::WalReplay {
                    detail: format!("recovered digest {rec:#018x} != live {live:#018x}"),
                });
            }
        }
        Err(e) => {
            return Err(Divergence::WalReplay { detail: format!("recovery failed: {e:?}") })
        }
    }
    Ok(())
}

/// Pass 5 (cases with `via_schedulers`): the same batches run through the
/// Block-STM and address-graph schedulers, each over its own clone of the
/// initial database. Both promise exact equivalence to serial TID-order
/// execution — aborting precisely the user aborts — so a serial replay is
/// the reference: per-batch commit sets must match it, the committed
/// sequence must satisfy the ordered-serializability oracle, and the final
/// digests of all three paths must be bit-identical.
fn scheduler_pass(case: &QaCase, outcome: &mut CaseOutcome) -> Result<(), Divergence> {
    let serial = case.build_database();
    let mut bstm = BlockStmEngine::new(serial.deep_clone());
    let mut agraph = AddrGraphEngine::new(serial.deep_clone());
    let mut tidgen = TidGen::new();
    for (step, chunk) in case.batches().enumerate() {
        let pre = serial.deep_clone();
        let batch = Batch::assemble(Vec::new(), chunk.to_vec(), &mut tidgen);
        let mut serial_committed: Vec<Tid> = Vec::new();
        for txn in &batch.txns {
            if execute_serial(&serial, txn).is_ok() {
                serial_committed.push(txn.tid);
            }
        }
        let brep = bstm.execute_batch(&batch);
        if brep.committed != serial_committed {
            return Err(Divergence::CommitSet {
                site: "blockstm-vs-serial".into(),
                step,
                expected: tids(&serial_committed),
                got: tids(&brep.committed),
            });
        }
        let arep = agraph.execute_batch(&batch);
        if arep.committed != serial_committed {
            return Err(Divergence::CommitSet {
                site: "addrgraph-vs-serial".into(),
                step,
                expected: tids(&serial_committed),
                got: tids(&arep.committed),
            });
        }
        let ordered: Vec<&Txn> = serial_committed
            .iter()
            .map(|t| batch.by_tid(*t).expect("committed tid in batch"))
            .collect();
        check_ordered_serializable(&pre, &ordered, &serial)
            .map_err(|v| Divergence::Oracle { step, violation: format!("{v:?}") })?;
        outcome.scheduler_committed += serial_committed.len();
    }
    let expected = serial.state_digest();
    for (site, engine_db) in
        [("blockstm-vs-serial", bstm.database()), ("addrgraph-vs-serial", agraph.database())]
    {
        let got = engine_db.state_digest();
        if got != expected {
            return Err(Divergence::Digest { site: site.into(), expected, got });
        }
    }
    Ok(())
}

/// Pass 6 (cases with `via_rebalance`): the sharded pass replayed with
/// one mid-stream topology change. A plan swapping table 0's rule
/// (replicated if it wasn't, hash if it was) is scheduled before the run
/// with cutover at batch 1, so the first batch routes under the old
/// rules and everything after the cutover under the new ones, with rows
/// migrated between slices at the barrier. The differential contract is
/// the point: against an untouched single-device reference, per-tick
/// commit/abort sequences must stay identical through the cutover, and
/// every final slice must equal the reference's restriction under
/// whichever partitioner is live at the end (the new one once the
/// cutover fired; the old one if the schedule drained first).
fn rebalance_pass(case: &QaCase, outcome: &mut CaseOutcome) -> Result<(), Divergence> {
    use ltpg_shard::{RebalanceOp, RebalancePlan, TableRule};
    let cfg = case.engine_config();
    let scfg = case.server_config();
    let db = case.build_database();
    let part = case.partitioner();
    let mut single = LtpgServer::new(db.deep_clone(), cfg.clone(), scfg.clone());
    let mut sharded = ltpg_shard::ShardedServer::new(db, part.clone(), cfg, scfg);
    let new_rule = match case.tables.first().map(|t| t.rule) {
        Some(crate::ShardRule::Replicated) => TableRule::Hash,
        _ => TableRule::Replicated,
    };
    let plan = RebalancePlan {
        cutover: 1,
        ops: vec![RebalanceOp::SetRule { table: ltpg_storage::TableId(0), rule: new_rule }],
    };
    let new_part = plan.apply_to(&part).expect("rule-swap plan validates");
    sharded.schedule_rebalance(plan).expect("plan scheduled before any batch logs");
    single.submit_all(case.txns.iter().cloned());
    sharded.submit_all(case.txns.iter().cloned());

    let max_ticks = (case.txns.len() / case.batch_size.max(1) + 2) * 12 + 16;
    for tick in 0..max_ticks {
        let a = sharded.tick();
        let b = single.tick();
        match (&a, &b) {
            (Some(sa), Some(sb)) => {
                if sa.committed != sb.committed || sa.aborted != sb.aborted {
                    return Err(Divergence::Lockstep {
                        step: tick,
                        detail: format!(
                            "rebalance pass: sharded committed {:?} aborted {:?}; \
                             single committed {:?} aborted {:?}",
                            tids(&sa.committed),
                            tids(&sa.aborted),
                            tids(&sb.committed),
                            tids(&sb.aborted)
                        ),
                    });
                }
            }
            (None, None) => {}
            _ => {
                return Err(Divergence::Lockstep {
                    step: tick,
                    detail: format!(
                        "rebalance pass: one server idle before the other \
                         (sharded idle: {}, single idle: {})",
                        a.is_none(),
                        b.is_none()
                    ),
                });
            }
        }
        if a.is_none() && b.is_none() && sharded.pending() == 0 && single.pending() == 0 {
            break;
        }
    }
    outcome.rebalance_applied = !sharded.rebalance_pending();
    let live = if sharded.rebalance_pending() { &part } else { &new_part };
    for s in 0..sharded.shard_count() {
        let expected =
            single.database().partition_clone(live.slice_pred(s)).state_digest();
        let got = sharded.database(s).state_digest();
        if expected != got {
            return Err(Divergence::ShardSlice { shard: s, expected, got });
        }
    }
    Ok(())
}

/// Pass 4 (cases with `via_front`): the identical schedule flows through
/// the `ltpg-front` ingestion pipeline on a lossless config (unbounded
/// queues, no rate limit, far deadline) into one server, while a second
/// server is fed the pre-formed stream directly. Both are compared
/// tick-for-tick — batch *formation* must never change commit decisions —
/// and the final state digests must be bit-identical. The front-end's
/// structural invariants (zero shed, end-to-end conservation) are also
/// divergences here: the whole point of the lossless config is that every
/// submission reaches the engine.
fn front_pass(case: &QaCase, outcome: &mut CaseOutcome) -> Result<(), Divergence> {
    let cfg = case.engine_config();
    let scfg = case.server_config();
    let db = case.build_database();
    let fcfg = ltpg_front::FrontConfig::lossless(case.batch_size);
    let mut front = ltpg_front::FrontEnd::new(
        LtpgServer::new(db.deep_clone(), cfg.clone(), scfg.clone()),
        fcfg,
    );
    for txn in &case.txns {
        front.offer(0, 0, txn.clone());
    }
    let max_ticks = (case.txns.len() / case.batch_size.max(1) + 2) * 12 + 16;
    front.finish(max_ticks);
    if front.stats().shed() != 0 {
        return Err(Divergence::FrontPipeline {
            detail: format!("lossless config shed {} transactions", front.stats().shed()),
        });
    }
    if !front.conserves() {
        return Err(Divergence::FrontPipeline {
            detail: format!("conservation violated: {:?}", front.stats()),
        });
    }
    let front_outcomes = front.take_outcomes();
    outcome.front_ticks = front_outcomes.len();

    let mut direct = LtpgServer::new(db, cfg, scfg);
    direct.submit_all(case.txns.iter().cloned());
    for (step, f) in front_outcomes.iter().enumerate() {
        let Some(d) = direct.tick() else {
            return Err(Divergence::Lockstep {
                step,
                detail: "direct server went idle while the front-fed one ticked".into(),
            });
        };
        if d.committed != f.committed {
            return Err(Divergence::CommitSet {
                site: "front-vs-direct".into(),
                step,
                expected: tids(&d.committed),
                got: tids(&f.committed),
            });
        }
        if d.aborted != f.aborted {
            return Err(Divergence::CommitSet {
                site: "front-vs-direct-aborts".into(),
                step,
                expected: tids(&d.aborted),
                got: tids(&f.aborted),
            });
        }
    }
    let expected = direct.database().state_digest();
    let got = front.sink().database().state_digest();
    if expected != got {
        return Err(Divergence::Digest { site: "front-vs-direct".into(), expected, got });
    }
    Ok(())
}
