//! The seeded case generator.
//!
//! Everything a case contains — schema shape, initial rows, transaction
//! schedule, sharding, fault plan — is derived from one `u64` seed via
//! `StdRng`, so a seed is a complete, replayable description of a case.
//! Coverage is deliberately broad and adversarial:
//!
//! * 1–3 tables, 1–3 columns, optionally carrying an ordered index, with
//!   per-table shard rules (hash / stride / replicated, i.e. broadcast
//!   writes);
//! * YCSB-fragment point ops (Zipfian keys, including the α just above 1
//!   regime), TPC-C-fragment read-modify-write chains and TID-keyed
//!   inserts, plus deletes and duplicate-prone inserts for phantom and
//!   user-abort coverage, and range scans against ordered tables;
//! * batch sizes small enough that schedules span many batches, 1/2/4
//!   shards, pipelined re-execution (re-entry delay 2), checkpoint
//!   cadences, mid-run shard loss, and a commutative (delayed-merge)
//!   column in one fifth of the cases.

use ltpg_storage::{ColId, TableId};
use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, Txn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{QaCase, ShardRule, TableSpec};

/// Shape of one table while the schedule is being generated (capacity is
/// finalized afterwards, once the insert count is known).
struct TableShape {
    cols: u16,
    rows: i64,
    ordered: bool,
    rule: ShardRule,
    inserts: usize,
}

/// Generate the case for `seed`.
pub fn generate(seed: u64) -> QaCase {
    // Decorrelate consecutive seeds without losing reproducibility.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);

    let ntables = rng.gen_range(1..=3usize);
    let mut shapes: Vec<TableShape> = (0..ntables)
        .map(|_| TableShape {
            cols: rng.gen_range(1..=3u16),
            rows: [8i64, 16, 32][rng.gen_range(0..3usize)],
            ordered: rng.gen_bool(0.3),
            rule: match rng.gen_range(0..10u32) {
                0..=4 => ShardRule::Hash,
                5..=7 => ShardRule::Stride([1i64, 2, 8][rng.gen_range(0..3usize)]),
                _ => ShardRule::Replicated,
            },
            inserts: 0,
        })
        .collect();

    // One Zipf exponent per case; 1.01 deliberately sits in the regime the
    // sampler used to degenerate in.
    let alpha = [0.0f64, 0.8, 1.01, 2.5][rng.gen_range(0..4usize)];
    let ntxns = rng.gen_range(8..=80usize);
    let mut txns = Vec::with_capacity(ntxns);
    for _ in 0..ntxns {
        txns.push(gen_txn(&mut rng, &mut shapes, alpha));
    }

    let tables = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut rows = Vec::with_capacity(s.rows as usize);
            for k in 0..s.rows {
                let vals: Vec<i64> =
                    (0..s.cols).map(|_| rng.gen_range(-100..100i64)).collect();
                rows.push((k, vals));
            }
            TableSpec {
                name: format!("T{i}"),
                cols: s.cols,
                capacity: s.rows as usize + s.inserts + 8,
                ordered: s.ordered,
                rule: s.rule,
                rows,
            }
        })
        .collect();

    let shards = [1u32, 2, 4][rng.gen_range(0..3usize)];
    let fail_shard = if shards > 1 && rng.gen_bool(0.2) {
        Some((rng.gen_range(0..shards), rng.gen_range(0..3u32)))
    } else {
        None
    };
    let batch_size = [4usize, 8, 16, 32][rng.gen_range(0..4usize)];
    let pipelined = rng.gen_bool(0.5);
    let checkpoint_every = if rng.gen_bool(0.3) { Some(2) } else { None };
    let commutative_t0c0 = rng.gen_bool(0.2);
    // Drawn last so pre-replication seeds map to the same cases they
    // always did. A pool turns any `fail_shard` loss into a failover; it
    // also rides along fault-free runs to cover steady-state replay.
    let standbys = if rng.gen_bool(0.25) { rng.gen_range(1..=2u32) } else { 0 };
    // Drawn after `standbys` for the same seed-stability reason: route a
    // third of cases through the ingestion front-end's batcher too.
    let via_front = rng.gen_bool(0.33);
    // Drawn after `via_front`, again for seed stability: half the cases
    // also cross-check the Block-STM and address-graph schedulers.
    let via_schedulers = rng.gen_bool(0.5);
    // Drawn last (after `via_schedulers`) for the same seed-stability
    // reason: a third of the multi-shard cases also replay the schedule
    // with one mid-stream rebalance plan, requiring the topology cutover
    // to be invisible. The draw always happens so the stream stays
    // aligned; it only takes effect when there is more than one shard.
    let via_rebalance = rng.gen_bool(0.33) && shards > 1;
    QaCase {
        seed,
        tables,
        txns,
        batch_size,
        shards,
        pipelined,
        checkpoint_every,
        fail_shard,
        commutative_t0c0,
        standbys,
        via_front,
        via_schedulers,
        via_rebalance,
    }
}

/// A Zipf-skewed key in `0 .. 2*rows` — half the domain is seeded, half is
/// initially absent, so reads miss, updates no-op, inserts create and
/// deletes erase.
fn key_for(rng: &mut StdRng, rows: i64, alpha: f64) -> i64 {
    let domain = (2 * rows) as u64;
    let z = ltpg_workloads::Zipf::new(domain, alpha);
    let rank = z.sample_scrambled(rng);
    (rank - 1) as i64
}

fn val_src(rng: &mut StdRng, params: usize, defined: &[u8]) -> Src {
    match rng.gen_range(0..10u32) {
        0..=5 => Src::Const(rng.gen_range(-50..50i64)),
        6..=7 if params > 0 => Src::Param(rng.gen_range(0..params) as u8),
        8 if !defined.is_empty() => Src::Reg(defined[rng.gen_range(0..defined.len())]),
        _ => Src::Const(rng.gen_range(-50..50i64)),
    }
}

fn gen_txn(rng: &mut StdRng, shapes: &mut [TableShape], alpha: f64) -> Txn {
    let params: Vec<i64> =
        (0..rng.gen_range(0..=2usize)).map(|_| rng.gen_range(0..16i64)).collect();
    let nops = rng.gen_range(1..=6usize);
    let mut ops = Vec::with_capacity(nops + 1);
    let mut defined: Vec<u8> = Vec::new();
    for _ in 0..nops {
        let ti = rng.gen_range(0..shapes.len());
        let t = TableId(ti as u16);
        let shape = &shapes[ti];
        let col = ColId(rng.gen_range(0..shape.cols));
        let key = Src::Const(key_for(rng, shape.rows, alpha));
        let rows = shape.rows;
        let ordered = shape.ordered;
        let op = match rng.gen_range(0..100u32) {
            // Point read into a register.
            0..=29 => {
                let out = rng.gen_range(0..4u8);
                defined.push(out);
                IrOp::Read { table: t, key, col, out }
            }
            // Overwrite (sometimes with dataflow from an earlier read).
            30..=49 => IrOp::Update {
                table: t,
                key,
                col,
                val: val_src(rng, params.len(), &defined),
            },
            // Commutative read-modify-write.
            50..=64 => IrOp::Add {
                table: t,
                key,
                col,
                delta: val_src(rng, params.len(), &defined),
            },
            // Insert: TID-keyed (always fresh — the deterministic-database
            // idiom) or a constant key that may collide for user-abort and
            // phantom coverage.
            65..=74 => {
                shapes[ti].inserts += 1;
                let ikey = if rng.gen_bool(0.6) {
                    Src::Tid
                } else {
                    Src::Const(key_for(rng, rows, alpha))
                };
                let values: Vec<Src> = (0..shapes[ti].cols)
                    .map(|_| Src::Const(rng.gen_range(-50..50i64)))
                    .collect();
                IrOp::Insert { table: t, key: ikey, values }
            }
            // Delete (phantom coverage against scans and inserts).
            75..=81 => IrOp::Delete { table: t, key },
            // Pure compute over whatever registers exist.
            82..=89 => {
                let f = [ComputeFn::Add, ComputeFn::Sub, ComputeFn::Mul, ComputeFn::Min,
                    ComputeFn::Max][rng.gen_range(0..5usize)];
                let a = val_src(rng, params.len(), &defined);
                let b = val_src(rng, params.len(), &defined);
                let out = rng.gen_range(0..4u8);
                defined.push(out);
                IrOp::Compute { f, a, b, out }
            }
            // Emulated short scan (point-lookup based, any table).
            90..=94 => {
                let out = rng.gen_range(0..4u8);
                defined.push(out);
                IrOp::ScanSum {
                    table: t,
                    start: Src::Const(rng.gen_range(0..rows)),
                    count: rng.gen_range(1..=6u16),
                    col,
                    out,
                }
            }
            // True ordered range scans, only against ordered tables.
            _ => {
                let out = rng.gen_range(0..4u8);
                let lo = rng.gen_range(0..rows);
                let hi = lo + rng.gen_range(1..=8i64);
                defined.push(out);
                if ordered {
                    match rng.gen_range(0..3u32) {
                        0 => IrOp::RangeSum {
                            table: t,
                            lo: Src::Const(lo),
                            hi: Src::Const(hi),
                            col,
                            out,
                        },
                        1 => IrOp::RangeMinKey {
                            table: t,
                            lo: Src::Const(lo),
                            hi: Src::Const(hi),
                            out,
                        },
                        _ => IrOp::RangeCountBelow {
                            table: t,
                            lo: Src::Const(lo),
                            hi: Src::Const(hi),
                            col,
                            threshold: Src::Const(rng.gen_range(-20..20i64)),
                            out,
                        },
                    }
                } else {
                    IrOp::ScanSum {
                        table: t,
                        start: Src::Const(lo),
                        count: (hi - lo) as u16,
                        col,
                        out,
                    }
                }
            }
        };
        ops.push(op);
    }
    let txn = Txn::new(ProcId(rng.gen_range(0..4u16)), params, ops);
    debug_assert!(txn.validate().is_ok(), "generator produced invalid txn: {txn:?}");
    txn
}
