//! Greedy delta-debugging minimization of divergent cases.
//!
//! The shrinker repeatedly proposes a smaller candidate, re-runs the full
//! differential check, and keeps the candidate iff it still diverges (any
//! divergence counts — the failure may legitimately change shape as the
//! case shrinks). Everything is a pure function of the case, so shrinking
//! is deterministic. Reduction passes, applied to a fixpoint:
//!
//! 1. **Transaction ddmin** — drop chunks of transactions at halving
//!    granularities down to single transactions.
//! 2. **Op pruning** — drop individual ops inside each surviving
//!    transaction (skipping removals that would break register dataflow).
//! 3. **Domain shrinking** — drop seed rows, then drop trailing tables no
//!    transaction references.
//! 4. **Config simplification** — fewer shards, no pipeline, no fault
//!    plan, no checkpointing, one big batch.

use ltpg_txn::{IrOp, Txn};

use crate::run::{run_case, Divergence};
use crate::QaCase;

/// Result of a successful shrink.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized case (still diverging).
    pub case: QaCase,
    /// The divergence the minimized case exhibits.
    pub divergence: Divergence,
    /// Differential runs spent shrinking (candidate evaluations).
    pub steps: u64,
}

/// Evaluation budget: candidate runs per shrink. Generous — cases are
/// small and each run is milliseconds — but bounded, so adversarial cases
/// cannot wedge the fuzzer.
const MAX_STEPS: u64 = 3_000;

struct Ctx {
    steps: u64,
}

impl Ctx {
    /// Run a candidate; `Some(divergence)` keeps it.
    fn diverges(&mut self, case: &QaCase) -> Option<Divergence> {
        if self.steps >= MAX_STEPS {
            return None;
        }
        self.steps += 1;
        run_case(case).err()
    }
}

/// Minimize `case`. Returns `None` if the case does not diverge at all.
pub fn shrink(case: &QaCase) -> Option<Shrunk> {
    let mut ctx = Ctx { steps: 0 };
    let mut div = ctx.diverges(case)?;
    let mut cur = case.clone();
    loop {
        let mut progress = false;
        progress |= shrink_txns(&mut cur, &mut div, &mut ctx);
        progress |= shrink_ops(&mut cur, &mut div, &mut ctx);
        progress |= shrink_rows(&mut cur, &mut div, &mut ctx);
        progress |= shrink_config(&mut cur, &mut div, &mut ctx);
        if !progress || ctx.steps >= MAX_STEPS {
            break;
        }
    }
    Some(Shrunk { case: cur, divergence: div, steps: ctx.steps })
}

/// Classic ddmin over the transaction schedule.
fn shrink_txns(cur: &mut QaCase, div: &mut Divergence, ctx: &mut Ctx) -> bool {
    let mut progress = false;
    let mut chunk = (cur.txns.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.txns.len() && cur.txns.len() > 1 {
            let mut cand = cur.clone();
            let end = (i + chunk).min(cand.txns.len());
            cand.txns.drain(i..end);
            if let Some(d) = ctx.diverges(&cand) {
                *cur = cand;
                *div = d;
                progress = true;
                // Same index now holds the next chunk.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    progress
}

/// A transaction with op `oi` removed, if the result is still well-formed.
fn without_op(txn: &Txn, oi: usize) -> Option<Txn> {
    if txn.ops.len() <= 1 {
        return None;
    }
    let mut ops = txn.ops.clone();
    ops.remove(oi);
    let cand = Txn::new(txn.proc, txn.params.clone(), ops);
    cand.validate().ok().map(|()| cand)
}

fn shrink_ops(cur: &mut QaCase, div: &mut Divergence, ctx: &mut Ctx) -> bool {
    let mut progress = false;
    let mut ti = 0;
    while ti < cur.txns.len() {
        let mut oi = 0;
        while oi < cur.txns[ti].ops.len() {
            let Some(cand_txn) = without_op(&cur.txns[ti], oi) else {
                oi += 1;
                continue;
            };
            let mut cand = cur.clone();
            cand.txns[ti] = cand_txn;
            if let Some(d) = ctx.diverges(&cand) {
                *cur = cand;
                *div = d;
                progress = true;
            } else {
                oi += 1;
            }
        }
        ti += 1;
    }
    progress
}

fn shrink_rows(cur: &mut QaCase, div: &mut Divergence, ctx: &mut Ctx) -> bool {
    let mut progress = false;
    for t in 0..cur.tables.len() {
        let mut ri = 0;
        while ri < cur.tables[t].rows.len() {
            let mut cand = cur.clone();
            cand.tables[t].rows.remove(ri);
            if let Some(d) = ctx.diverges(&cand) {
                *cur = cand;
                *div = d;
                progress = true;
            } else {
                ri += 1;
            }
        }
    }
    // Trailing tables can go wholesale (dropping interior tables would
    // renumber `TableId`s referenced by the surviving ops) — but only ones
    // no op references, or the candidate is malformed and its
    // out-of-bounds panic would masquerade as the divergence under test.
    while cur.tables.len() > 1 && !references_table(cur, cur.tables.len() - 1) {
        let mut cand = cur.clone();
        cand.tables.pop();
        if let Some(d) = ctx.diverges(&cand) {
            *cur = cand;
            *div = d;
            progress = true;
        } else {
            break;
        }
    }
    progress
}

/// Does any op of any transaction touch table `ti`?
fn references_table(case: &QaCase, ti: usize) -> bool {
    let id = ltpg_storage::TableId(ti as u16);
    case.txns.iter().any(|txn| {
        txn.ops.iter().any(|op| match op {
            IrOp::Read { table, .. }
            | IrOp::Update { table, .. }
            | IrOp::Add { table, .. }
            | IrOp::Insert { table, .. }
            | IrOp::Delete { table, .. }
            | IrOp::ScanSum { table, .. }
            | IrOp::RangeSum { table, .. }
            | IrOp::RangeMinKey { table, .. }
            | IrOp::RangeCountBelow { table, .. } => *table == id,
            IrOp::Compute { .. } => false,
        })
    })
}

fn shrink_config(cur: &mut QaCase, div: &mut Divergence, ctx: &mut Ctx) -> bool {
    let mut progress = false;
    let candidates: Vec<fn(&mut QaCase)> = vec![
        |c| c.via_rebalance = false,
        |c| c.via_schedulers = false,
        |c| c.via_front = false,
        |c| c.standbys = 0,
        |c| c.fail_shard = None,
        |c| c.shards = 1,
        |c| c.pipelined = false,
        |c| c.checkpoint_every = None,
        |c| c.commutative_t0c0 = false,
        |c| c.batch_size = c.txns.len().max(1),
    ];
    for f in candidates {
        let mut cand = cur.clone();
        f(&mut cand);
        if cand == *cur {
            continue;
        }
        if let Some(d) = ctx.diverges(&cand) {
            *cur = cand;
            *div = d;
            progress = true;
        }
    }
    progress
}
