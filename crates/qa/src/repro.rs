//! The minimized-repro file format (v1): a line-oriented, human-readable,
//! diff-friendly serialization of a [`QaCase`].
//!
//! The shrinker writes these under `tests/repros/`; a `#[test]` loader
//! replays every checked-in file forever after, so a once-found divergence
//! can never silently regress. The same format doubles as the promotion
//! target for proptest regression seeds.
//!
//! ```text
//! # ltpg-qa repro v1
//! version 1
//! seed 42
//! batch_size 8
//! shards 2
//! pipelined true
//! checkpoint_every 2
//! fail_shard 1 2
//! commutative_t0c0
//! table T0 cols=2 capacity=40 ordered=false rule=hash
//! row 0 3 = 7 -2
//! txn proc=0 params=3,7
//!   op read t=0 key=c:3 col=0 out=0
//!   op update t=0 key=c:3 col=1 val=r:0
//! end
//! ```
//!
//! Operand sources: `c:<n>` literal, `p:<n>` parameter slot, `r:<n>`
//! register, `tid` the transaction's own TID.

use std::fmt::Write as _;
use std::path::Path;

use ltpg_storage::{ColId, TableId};
use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, Txn};

use crate::{QaCase, ShardRule, TableSpec};

/// Render a case in repro format v1.
pub fn to_text(case: &QaCase) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# ltpg-qa repro v1");
    let _ = writeln!(s, "version 1");
    let _ = writeln!(s, "seed {}", case.seed);
    let _ = writeln!(s, "batch_size {}", case.batch_size);
    let _ = writeln!(s, "shards {}", case.shards);
    let _ = writeln!(s, "pipelined {}", case.pipelined);
    if let Some(every) = case.checkpoint_every {
        let _ = writeln!(s, "checkpoint_every {every}");
    }
    if let Some((shard, tick)) = case.fail_shard {
        let _ = writeln!(s, "fail_shard {shard} {tick}");
    }
    if case.standbys > 0 {
        let _ = writeln!(s, "standbys {}", case.standbys);
    }
    if case.via_front {
        let _ = writeln!(s, "via_front");
    }
    if case.via_schedulers {
        let _ = writeln!(s, "via_schedulers");
    }
    if case.via_rebalance {
        let _ = writeln!(s, "via_rebalance");
    }
    if case.commutative_t0c0 {
        let _ = writeln!(s, "commutative_t0c0");
    }
    for (i, t) in case.tables.iter().enumerate() {
        let rule = match t.rule {
            ShardRule::Hash => "hash".to_string(),
            ShardRule::Stride(k) => format!("stride:{k}"),
            ShardRule::Replicated => "replicated".to_string(),
        };
        let _ = writeln!(
            s,
            "table {} cols={} capacity={} ordered={} rule={rule}",
            t.name, t.cols, t.capacity, t.ordered
        );
        for (key, vals) in &t.rows {
            let vals: Vec<String> = vals.iter().map(i64::to_string).collect();
            let _ = writeln!(s, "row {i} {key} = {}", vals.join(" "));
        }
    }
    for txn in &case.txns {
        let params: Vec<String> = txn.params.iter().map(i64::to_string).collect();
        if params.is_empty() {
            let _ = writeln!(s, "txn proc={}", txn.proc.0);
        } else {
            let _ = writeln!(s, "txn proc={} params={}", txn.proc.0, params.join(","));
        }
        for op in &txn.ops {
            let _ = writeln!(s, "  op {}", op_to_text(op));
        }
        let _ = writeln!(s, "end");
    }
    s
}

fn src_to_text(s: Src) -> String {
    match s {
        Src::Const(v) => format!("c:{v}"),
        Src::Param(p) => format!("p:{p}"),
        Src::Reg(r) => format!("r:{r}"),
        Src::Tid => "tid".to_string(),
    }
}

fn fn_to_text(f: ComputeFn) -> &'static str {
    match f {
        ComputeFn::Add => "add",
        ComputeFn::Sub => "sub",
        ComputeFn::Mul => "mul",
        ComputeFn::Min => "min",
        ComputeFn::Max => "max",
        ComputeFn::StockSub => "stocksub",
    }
}

fn op_to_text(op: &IrOp) -> String {
    match op {
        IrOp::Read { table, key, col, out } => format!(
            "read t={} key={} col={} out={out}",
            table.0,
            src_to_text(*key),
            col.0
        ),
        IrOp::Update { table, key, col, val } => format!(
            "update t={} key={} col={} val={}",
            table.0,
            src_to_text(*key),
            col.0,
            src_to_text(*val)
        ),
        IrOp::Add { table, key, col, delta } => format!(
            "add t={} key={} col={} delta={}",
            table.0,
            src_to_text(*key),
            col.0,
            src_to_text(*delta)
        ),
        IrOp::Insert { table, key, values } => {
            let vals: Vec<String> = values.iter().map(|v| src_to_text(*v)).collect();
            format!("insert t={} key={} vals={}", table.0, src_to_text(*key), vals.join(","))
        }
        IrOp::Delete { table, key } => {
            format!("delete t={} key={}", table.0, src_to_text(*key))
        }
        IrOp::Compute { f, a, b, out } => format!(
            "compute f={} a={} b={} out={out}",
            fn_to_text(*f),
            src_to_text(*a),
            src_to_text(*b)
        ),
        IrOp::ScanSum { table, start, count, col, out } => format!(
            "scansum t={} start={} count={count} col={} out={out}",
            table.0,
            src_to_text(*start),
            col.0
        ),
        IrOp::RangeSum { table, lo, hi, col, out } => format!(
            "rangesum t={} lo={} hi={} col={} out={out}",
            table.0,
            src_to_text(*lo),
            src_to_text(*hi),
            col.0
        ),
        IrOp::RangeMinKey { table, lo, hi, out } => format!(
            "rangemin t={} lo={} hi={} out={out}",
            table.0,
            src_to_text(*lo),
            src_to_text(*hi)
        ),
        IrOp::RangeCountBelow { table, lo, hi, col, threshold, out } => format!(
            "rangecountbelow t={} lo={} hi={} col={} thr={} out={out}",
            table.0,
            src_to_text(*lo),
            src_to_text(*hi),
            col.0,
            src_to_text(*threshold)
        ),
    }
}

/// Errors produced while parsing a repro file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "repro parse error at line {}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_src(line: usize, s: &str) -> Result<Src, ParseError> {
    if s == "tid" {
        return Ok(Src::Tid);
    }
    let (tag, val) = s.split_once(':').ok_or_else(|| err(line, format!("bad src `{s}`")))?;
    let parse = |v: &str| v.parse::<i64>().map_err(|_| err(line, format!("bad src `{s}`")));
    match tag {
        "c" => Ok(Src::Const(parse(val)?)),
        "p" => Ok(Src::Param(parse(val)? as u8)),
        "r" => Ok(Src::Reg(parse(val)? as u8)),
        _ => Err(err(line, format!("bad src tag `{tag}`"))),
    }
}

/// `key=value` fields of one op line, position-independent.
struct Fields<'a> {
    line: usize,
    kv: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn new(line: usize, toks: &[&'a str]) -> Result<Self, ParseError> {
        let mut kv = Vec::with_capacity(toks.len());
        for t in toks {
            let (k, v) =
                t.split_once('=').ok_or_else(|| err(line, format!("bad field `{t}`")))?;
            kv.push((k, v));
        }
        Ok(Fields { line, kv })
    }

    fn get(&self, key: &str) -> Result<&'a str, ParseError> {
        self.kv
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| err(self.line, format!("missing field `{key}`")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ParseError> {
        self.get(key)?
            .parse::<T>()
            .map_err(|_| err(self.line, format!("bad number in field `{key}`")))
    }

    fn src(&self, key: &str) -> Result<Src, ParseError> {
        parse_src(self.line, self.get(key)?)
    }
}

fn parse_op(line: usize, toks: &[&str]) -> Result<IrOp, ParseError> {
    let kind = toks[0];
    let f = Fields::new(line, &toks[1..])?;
    let table = || -> Result<TableId, ParseError> { Ok(TableId(f.num::<u16>("t")?)) };
    let col = || -> Result<ColId, ParseError> { Ok(ColId(f.num::<u16>("col")?)) };
    match kind {
        "read" => Ok(IrOp::Read { table: table()?, key: f.src("key")?, col: col()?, out: f.num("out")? }),
        "update" => Ok(IrOp::Update { table: table()?, key: f.src("key")?, col: col()?, val: f.src("val")? }),
        "add" => Ok(IrOp::Add { table: table()?, key: f.src("key")?, col: col()?, delta: f.src("delta")? }),
        "insert" => {
            let vals = f.get("vals")?;
            let values = vals
                .split(',')
                .filter(|v| !v.is_empty())
                .map(|v| parse_src(line, v))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(IrOp::Insert { table: table()?, key: f.src("key")?, values })
        }
        "delete" => Ok(IrOp::Delete { table: table()?, key: f.src("key")? }),
        "compute" => {
            let func = match f.get("f")? {
                "add" => ComputeFn::Add,
                "sub" => ComputeFn::Sub,
                "mul" => ComputeFn::Mul,
                "min" => ComputeFn::Min,
                "max" => ComputeFn::Max,
                "stocksub" => ComputeFn::StockSub,
                other => return Err(err(line, format!("unknown compute fn `{other}`"))),
            };
            Ok(IrOp::Compute { f: func, a: f.src("a")?, b: f.src("b")?, out: f.num("out")? })
        }
        "scansum" => Ok(IrOp::ScanSum {
            table: table()?,
            start: f.src("start")?,
            count: f.num("count")?,
            col: col()?,
            out: f.num("out")?,
        }),
        "rangesum" => Ok(IrOp::RangeSum {
            table: table()?,
            lo: f.src("lo")?,
            hi: f.src("hi")?,
            col: col()?,
            out: f.num("out")?,
        }),
        "rangemin" => Ok(IrOp::RangeMinKey {
            table: table()?,
            lo: f.src("lo")?,
            hi: f.src("hi")?,
            out: f.num("out")?,
        }),
        "rangecountbelow" => Ok(IrOp::RangeCountBelow {
            table: table()?,
            lo: f.src("lo")?,
            hi: f.src("hi")?,
            col: col()?,
            threshold: f.src("thr")?,
            out: f.num("out")?,
        }),
        other => Err(err(line, format!("unknown op `{other}`"))),
    }
}

/// Parse repro text back into a case.
pub fn from_text(text: &str) -> Result<QaCase, ParseError> {
    let mut case = QaCase {
        seed: 0,
        tables: Vec::new(),
        txns: Vec::new(),
        batch_size: 16,
        shards: 1,
        pipelined: false,
        checkpoint_every: None,
        fail_shard: None,
        commutative_t0c0: false,
        standbys: 0,
        via_front: false,
        via_schedulers: false,
        via_rebalance: false,
    };
    // (proc, params, ops) of the txn currently being collected.
    let mut open_txn: Option<(u16, Vec<i64>, Vec<IrOp>)> = None;
    let mut saw_version = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        match toks[0] {
            "version" => {
                let v: u32 = toks
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(lineno, "bad version"))?;
                if v != 1 {
                    return Err(err(lineno, format!("unsupported repro version {v}")));
                }
                saw_version = true;
            }
            "seed" => case.seed = num(lineno, toks.get(1))?,
            "batch_size" => case.batch_size = num(lineno, toks.get(1))?,
            "shards" => case.shards = num(lineno, toks.get(1))?,
            "pipelined" => {
                case.pipelined = match toks.get(1).copied() {
                    Some("true") => true,
                    Some("false") => false,
                    _ => return Err(err(lineno, "pipelined wants true/false")),
                }
            }
            "checkpoint_every" => case.checkpoint_every = Some(num(lineno, toks.get(1))?),
            "fail_shard" => {
                case.fail_shard =
                    Some((num(lineno, toks.get(1))?, num(lineno, toks.get(2))?))
            }
            "standbys" => case.standbys = num(lineno, toks.get(1))?,
            "via_front" => case.via_front = true,
            "via_schedulers" => case.via_schedulers = true,
            "via_rebalance" => case.via_rebalance = true,
            "commutative_t0c0" => case.commutative_t0c0 = true,
            "table" => {
                let name =
                    toks.get(1).ok_or_else(|| err(lineno, "table wants a name"))?.to_string();
                let f = Fields::new(lineno, &toks[2..])?;
                let rule_s = f.get("rule")?;
                let rule = if rule_s == "hash" {
                    ShardRule::Hash
                } else if rule_s == "replicated" {
                    ShardRule::Replicated
                } else if let Some(k) = rule_s.strip_prefix("stride:") {
                    ShardRule::Stride(
                        k.parse().map_err(|_| err(lineno, "bad stride"))?,
                    )
                } else {
                    return Err(err(lineno, format!("unknown rule `{rule_s}`")));
                };
                case.tables.push(TableSpec {
                    name,
                    cols: f.num("cols")?,
                    capacity: f.num("capacity")?,
                    ordered: f.get("ordered")? == "true",
                    rule,
                    rows: Vec::new(),
                });
            }
            "row" => {
                let t: usize = num(lineno, toks.get(1))?;
                let key: i64 = num(lineno, toks.get(2))?;
                if toks.get(3) != Some(&"=") {
                    return Err(err(lineno, "row wants `row <table> <key> = <vals...>`"));
                }
                let vals = toks[4..]
                    .iter()
                    .map(|v| v.parse::<i64>().map_err(|_| err(lineno, "bad row value")))
                    .collect::<Result<Vec<_>, _>>()?;
                let spec = case
                    .tables
                    .get_mut(t)
                    .ok_or_else(|| err(lineno, format!("row for undeclared table {t}")))?;
                if vals.len() != spec.cols as usize {
                    return Err(err(lineno, "row width does not match table cols"));
                }
                spec.rows.push((key, vals));
            }
            "txn" => {
                if open_txn.is_some() {
                    return Err(err(lineno, "txn before previous `end`"));
                }
                let f = Fields::new(lineno, &toks[1..])?;
                let proc: u16 = f.num("proc")?;
                let params = match f.get("params") {
                    Ok(p) => p
                        .split(',')
                        .filter(|v| !v.is_empty())
                        .map(|v| v.parse::<i64>().map_err(|_| err(lineno, "bad param")))
                        .collect::<Result<Vec<_>, _>>()?,
                    Err(_) => Vec::new(),
                };
                open_txn = Some((proc, params, Vec::new()));
            }
            "op" => {
                let Some((_, _, ops)) = open_txn.as_mut() else {
                    return Err(err(lineno, "op outside a txn block"));
                };
                ops.push(parse_op(lineno, &toks[1..])?);
            }
            "end" => {
                let (proc, params, ops) = open_txn
                    .take()
                    .ok_or_else(|| err(lineno, "end without an open txn"))?;
                let txn = Txn::new(ProcId(proc), params, ops);
                txn.validate().map_err(|e| err(lineno, format!("invalid txn: {e}")))?;
                case.txns.push(txn);
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    if !saw_version {
        return Err(err(1, "missing `version` line"));
    }
    if open_txn.is_some() {
        return Err(err(text.lines().count(), "unterminated txn block"));
    }
    if case.tables.is_empty() {
        return Err(err(1, "repro declares no tables"));
    }
    Ok(case)
}

fn num<T: std::str::FromStr>(line: usize, tok: Option<&&str>) -> Result<T, ParseError> {
    tok.and_then(|v| v.parse().ok()).ok_or_else(|| err(line, "missing/bad number"))
}

/// Read and parse a repro file.
pub fn load_file(path: &Path) -> Result<QaCase, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Write `case` to `path` in repro format.
pub fn write_file(path: &Path, case: &QaCase) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_text(case))
}
