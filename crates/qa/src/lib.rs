//! Deterministic differential fuzzing for the LTPG stack (`ltpg-qa`).
//!
//! A seeded generator ([`gen::generate`]) produces self-contained cases —
//! random schemas, mixed YCSB/TPC-C-fragment schedules with inserts and
//! deletes, batching/sharding/fault/checkpoint configuration — and the
//! runner ([`run::run_case`]) pushes each case through four execution
//! paths that must agree bit-for-bit:
//!
//! * the simulated-GPU [`LtpgEngine`](ltpg::LtpgEngine),
//! * the [`CpuFallbackEngine`](ltpg_baselines::CpuFallbackEngine) twin,
//! * the single-device vs sharded server pair in lockstep, and
//! * WAL replay of the single device's log,
//!
//! with the serializability oracle auditing every committed batch. Any
//! disagreement is a typed [`Divergence`]; the shrinker ([`shrink::shrink`])
//! minimizes the case by greedy delta-debugging and the repro format
//! ([`repro`]) persists it under `tests/repros/` where a `#[test]` loader
//! replays it forever after.
//!
//! Everything — generation, execution, shrinking — is a pure function of
//! the seed, so `qa_fuzz --start S --seeds N` is exactly reproducible.

#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod repro;
pub mod run;
pub mod shrink;

pub use case::{QaCase, ShardRule, TableSpec};
pub use run::{run_case, CaseOutcome, Divergence};
pub use shrink::{shrink, Shrunk};

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ltpg_telemetry::{names, Registry};

/// Options for a fuzzing run.
#[derive(Clone)]
pub struct FuzzOptions {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of consecutive seeds to run.
    pub seeds: u64,
    /// Where to write minimized repro files (`None` disables writing).
    pub repro_dir: Option<PathBuf>,
    /// Telemetry registry for the `qa.*` counters (`None` uses the
    /// process-global registry).
    pub registry: Option<Arc<Registry>>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { start_seed: 0, seeds: 50, repro_dir: None, registry: None }
    }
}

/// One divergence found (and minimized) during a fuzzing run.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Seed of the original case.
    pub seed: u64,
    /// The divergence exhibited by the minimized case.
    pub divergence: Divergence,
    /// The minimized case.
    pub minimized: QaCase,
    /// Candidate evaluations the shrinker spent.
    pub shrink_steps: u64,
    /// Where the repro was written, if a directory was configured.
    pub repro_path: Option<PathBuf>,
}

/// Summary of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Transactions across all cases.
    pub txns: u64,
    /// Every divergence found, minimized.
    pub divergences: Vec<FoundDivergence>,
}

/// Run `opts.seeds` consecutive cases, shrinking and persisting every
/// divergence. Deterministic in `opts`.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    let registry =
        opts.registry.clone().unwrap_or_else(|| Arc::clone(ltpg_telemetry::global()));
    let mut report = FuzzReport::default();
    for seed in opts.start_seed..opts.start_seed + opts.seeds {
        let case = gen::generate(seed);
        registry.counter(names::QA_CASES).inc();
        registry.counter(names::QA_TXNS).add(case.txns.len() as u64);
        report.cases += 1;
        report.txns += case.txns.len() as u64;
        if run_case(&case).is_ok() {
            continue;
        }
        registry.counter(names::QA_DIVERGENCES).inc();
        // `run_case` is deterministic, so the shrinker re-observes the
        // divergence on its first evaluation.
        let shrunk = shrink::shrink(&case).expect("divergent case must shrink");
        registry.counter(names::QA_SHRINK_STEPS).add(shrunk.steps);
        let repro_path = opts.repro_dir.as_ref().map(|dir| {
            let path = dir.join(format!("fuzz-seed-{seed}.repro"));
            repro::write_file(&path, &shrunk.case).expect("write repro file");
            registry.counter(names::QA_REPROS_WRITTEN).inc();
            path
        });
        report.divergences.push(FoundDivergence {
            seed,
            divergence: shrunk.divergence,
            minimized: shrunk.case,
            shrink_steps: shrunk.steps,
            repro_path,
        });
    }
    report
}

/// Replay one repro file; `Err` carries the parse failure or divergence.
pub fn replay_file(path: &Path) -> Result<CaseOutcome, String> {
    let case = repro::load_file(path)?;
    run_case(&case).map_err(|d| format!("{}: {d}", path.display()))
}

/// Replay every `*.repro` file in `dir` (sorted by name; an absent or empty
/// directory passes vacuously). Returns the outcomes, or a message naming
/// every file that failed.
pub fn replay_dir(dir: &Path) -> Result<Vec<(PathBuf, CaseOutcome)>, String> {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "repro"))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    let mut outcomes = Vec::with_capacity(files.len());
    let mut failures = Vec::new();
    for path in files {
        match replay_file(&path) {
            Ok(outcome) => outcomes.push((path, outcome)),
            Err(e) => failures.push(e),
        }
    }
    if failures.is_empty() {
        Ok(outcomes)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        for seed in [0u64, 1, 7, 1234] {
            assert_eq!(gen::generate(seed), gen::generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn generated_cases_round_trip_through_repro_format() {
        for seed in 0..20u64 {
            let case = gen::generate(seed);
            let text = repro::to_text(&case);
            let parsed = repro::from_text(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(case, parsed, "seed {seed} did not round-trip");
        }
    }

    #[test]
    fn smoke_seeds_run_clean() {
        let report = fuzz(&FuzzOptions {
            start_seed: 0,
            seeds: 10,
            repro_dir: None,
            registry: Some(Registry::new_shared()),
        });
        assert_eq!(report.cases, 10);
        assert!(report.txns > 0);
        if let Some(d) = report.divergences.first() {
            panic!("seed {} diverged: {}", d.seed, d.divergence);
        }
    }

    #[test]
    fn fuzz_records_telemetry() {
        let reg = Registry::new_shared();
        let _ = fuzz(&FuzzOptions {
            start_seed: 100,
            seeds: 3,
            repro_dir: None,
            registry: Some(Arc::clone(&reg)),
        });
        assert_eq!(reg.counter_value(names::QA_CASES), 3);
        assert!(reg.counter_value(names::QA_TXNS) > 0);
    }

    #[test]
    fn repro_parser_rejects_malformed_input() {
        assert!(repro::from_text("").is_err(), "empty file");
        assert!(repro::from_text("version 2\n").is_err(), "future version");
        assert!(
            repro::from_text("version 1\ntable T0 cols=1 capacity=8 ordered=false rule=hash\nrow 0 1 = 2 3\n")
                .is_err(),
            "row wider than table"
        );
        assert!(
            repro::from_text("version 1\ntable T0 cols=1 capacity=8 ordered=false rule=hash\ntxn proc=0\n  op read t=0 key=c:0 col=0 out=0\n")
                .is_err(),
            "unterminated txn"
        );
    }
}
