//! The unit of differential testing: a self-contained case bundling a
//! schema, its initial rows, a transaction schedule and the run
//! configuration (batching, sharding, fault plan).
//!
//! A [`QaCase`] carries everything needed to replay an execution — it is
//! what the generator produces, what the runner consumes, what the
//! shrinker minimizes and what the repro format serializes. Nothing in a
//! case refers back to the seed that produced it (the seed is kept only as
//! provenance), so a shrunk case replays identically forever even if the
//! generator evolves.

use ltpg::{LtpgConfig, ServerConfig};
use ltpg_shard::{Partitioner, TableRule};
use ltpg_storage::{ColId, Database, Table, TableBuilder, TableId};
use ltpg_txn::Txn;

/// One table of a case's schema plus its initial rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table name (unique within the case).
    pub name: String,
    /// Number of value columns (named `c0..`).
    pub cols: u16,
    /// Row capacity (sized with insert headroom by the generator).
    pub capacity: usize,
    /// Whether the table carries an ordered (B+tree) index, enabling the
    /// `Range*` scan ops.
    pub ordered: bool,
    /// How the table's keys map to shards in the sharded pass.
    pub rule: ShardRule,
    /// Initial rows: `(key, one value per column)`.
    pub rows: Vec<(i64, Vec<i64>)>,
}

/// Per-table partitioning rule, mirroring [`TableRule`] in a form the
/// repro format can serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRule {
    /// Multiplicative hash of the key.
    Hash,
    /// `owner = (key div stride) mod shards`.
    Stride(i64),
    /// Every shard holds a full copy (writes broadcast).
    Replicated,
}

impl ShardRule {
    /// The `ltpg-shard` rule this spec stands for.
    pub fn to_table_rule(self) -> TableRule {
        match self {
            ShardRule::Hash => TableRule::Hash,
            ShardRule::Stride(s) => TableRule::Stride { stride: s },
            ShardRule::Replicated => TableRule::Replicated,
        }
    }
}

/// A complete differential-testing case.
#[derive(Debug, Clone, PartialEq)]
pub struct QaCase {
    /// Generator seed (provenance only — replay never re-derives anything
    /// from it).
    pub seed: u64,
    /// Schema and initial data.
    pub tables: Vec<TableSpec>,
    /// The transaction schedule, in admission order. TIDs are assigned at
    /// batch assembly, so the `Txn::tid` fields here are ignored.
    pub txns: Vec<Txn>,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Shard count for the sharded pass (1, 2 or 4).
    pub shards: u32,
    /// Whether the servers run in pipelined mode (re-entry delay 2).
    pub pipelined: bool,
    /// Checkpoint cadence for the durability pass.
    pub checkpoint_every: Option<usize>,
    /// Fault plan: kill shard `.0`'s device after tick `.1` of the sharded
    /// pass, forcing its CPU-twin fallback mid-run.
    pub fail_shard: Option<(u32, u32)>,
    /// Warm standby rows attached to the sharded pass. With a pool, a
    /// `fail_shard` loss promotes a standby row instead of degrading to
    /// the CPU twin — and every differential assertion (lockstep, slice
    /// digests, WAL replay) must hold regardless, because failover is
    /// replay of the same deterministic commit stream.
    pub standbys: u32,
    /// Treat column 0 of table 0 as always-commutative (exercises the
    /// delayed-merge and forced-abort paths).
    pub commutative_t0c0: bool,
    /// Also drive the schedule through the `ltpg-front` ingestion
    /// pipeline (lossless config) and compare tick-for-tick against a
    /// directly fed server: batch *formation* must never change commit
    /// decisions, and final digests must be bit-identical.
    pub via_front: bool,
    /// Also run the batches through the two competing schedulers
    /// (Block-STM and the address graph): both promise bit-identical
    /// equivalence to serial TID-order execution, so their commit sets
    /// and final digests are differentially compared against a serial
    /// replay and the ordered-serializability oracle.
    pub via_schedulers: bool,
    /// Also run the sharded pass a second time with one mid-stream
    /// rebalance plan scheduled at an aligned batch boundary (table 0's
    /// rule is swapped): the topology cutover must be invisible to the
    /// commit history and to the final slice digests. Only meaningful
    /// when `shards > 1`.
    pub via_rebalance: bool,
}

impl QaCase {
    /// Materialize the initial database.
    pub fn build_database(&self) -> Database {
        let mut db = Database::new();
        for spec in &self.tables {
            let col_names: Vec<String> =
                (0..spec.cols).map(|c| format!("c{c}")).collect();
            let schema = TableBuilder::new(&spec.name)
                .columns(col_names.iter().map(String::as_str))
                .capacity(spec.capacity)
                .build();
            let table = if spec.ordered {
                Table::new(schema).with_ordered()
            } else {
                Table::new(schema)
            };
            let id = db.add_built_table(table);
            for (key, vals) in &spec.rows {
                db.table(id).insert(*key, vals).expect("seed row insert");
            }
        }
        db
    }

    /// Engine configuration shared by every execution path of the case.
    pub fn engine_config(&self) -> LtpgConfig {
        let mut cfg = LtpgConfig { max_batch: self.batch_size.max(64), ..LtpgConfig::default() };
        if self.commutative_t0c0 && !self.tables.is_empty() {
            cfg.commutative_cols.insert((TableId(0), ColId(0)));
        }
        cfg
    }

    /// Server configuration shared by the single-device and sharded passes.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            batch_size: self.batch_size,
            pipelined: self.pipelined,
            checkpoint_every: self.checkpoint_every,
            ..ServerConfig::default()
        }
    }

    /// Partitioner for the sharded pass.
    pub fn partitioner(&self) -> Partitioner {
        let mut p = Partitioner::new(self.shards, TableRule::Hash);
        for (i, spec) in self.tables.iter().enumerate() {
            p = p.with_rule(TableId(i as u16), spec.rule.to_table_rule());
        }
        p
    }

    /// Transactions per batch chunk, in admission order.
    pub fn batches(&self) -> impl Iterator<Item = &[Txn]> {
        self.txns.chunks(self.batch_size.max(1))
    }
}
