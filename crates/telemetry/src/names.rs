//! Canonical metric names.
//!
//! Every crate that reports a quantity refers to it through these constants
//! so the JSONL export keys stay consistent across the stack and tests can
//! assert on them without string drift. The prefix encodes the layer that
//! owns the metric: `gpu.*` (simulated device), `ltpg.*` (the LTPG engine),
//! `server.*` (tick/retry/degradation loop), `wal.*` (durability), `faults.*`
//! (the dashboard-alertable fault counters mirrored by `FaultStats`) and
//! `engine.<name>.*` (the per-`BatchEngine` hook, including CPU baselines).

// --- simulated device -------------------------------------------------------

/// Counter: kernel launches completed on the simulated device.
pub const GPU_KERNEL_LAUNCHES: &str = "gpu.kernel.launches";
/// Histogram: simulated nanoseconds per kernel launch.
pub const GPU_KERNEL_NS: &str = "gpu.kernel.ns";
/// Counter: bytes copied host-to-device.
pub const GPU_BYTES_H2D: &str = "gpu.bytes_h2d";
/// Counter: bytes copied device-to-host.
pub const GPU_BYTES_D2H: &str = "gpu.bytes_d2h";
/// Histogram: simulated nanoseconds per transfer (either direction).
pub const GPU_TRANSFER_NS: &str = "gpu.transfer.ns";
/// Counter: global-memory atomic operations executed by kernels.
pub const GPU_ATOMIC_OPS: &str = "gpu.atomic.ops";
/// Counter: cumulative atomic serialization depth (conflict stalls).
pub const GPU_ATOMIC_SERIAL_DEPTH: &str = "gpu.atomic.serial_depth";
/// Counter: warps that diverged at least once during a launch.
pub const GPU_DIVERGENT_WARPS: &str = "gpu.divergent_warps";
/// Counter: demand page faults (unified-memory oversubscription).
pub const GPU_PAGE_FAULTS: &str = "gpu.page_faults";
/// Counter: explicit device synchronizations.
pub const GPU_SYNCS: &str = "gpu.syncs";

// --- LTPG engine ------------------------------------------------------------

/// Histogram: simulated ns spent uploading a batch (H2D).
pub const LTPG_PHASE_H2D_NS: &str = "ltpg.phase.h2d_ns";
/// Histogram: simulated ns in the execute phase.
pub const LTPG_PHASE_EXECUTE_NS: &str = "ltpg.phase.execute_ns";
/// Histogram: simulated ns in the conflict-detection phase.
pub const LTPG_PHASE_DETECT_NS: &str = "ltpg.phase.detect_ns";
/// Histogram: simulated ns in the writeback phase.
pub const LTPG_PHASE_WRITEBACK_NS: &str = "ltpg.phase.writeback_ns";
/// Histogram: simulated ns in device synchronization between phases.
pub const LTPG_PHASE_SYNC_NS: &str = "ltpg.phase.sync_ns";
/// Histogram: simulated ns spent downloading results (D2H).
pub const LTPG_PHASE_D2H_NS: &str = "ltpg.phase.d2h_ns";
/// Histogram: simulated ns spent in per-batch device allocation
/// (cudaMalloc-class). Zero in steady state once arena reuse is on.
pub const LTPG_PHASE_ALLOC_NS: &str = "ltpg.phase.alloc_ns";
/// Counter: per-batch host/device buffer allocations that were *not*
/// absorbed by the engine's reusable arena (watermark growth events).
/// Flat across steady-state ticks when arena reuse is on.
pub const LTPG_ALLOC_EVENTS: &str = "ltpg.alloc_events";
/// Histogram: naive serial per-batch latency (sum of all phases).
pub const LTPG_BATCH_TOTAL_NS: &str = "ltpg.batch.total_ns";
/// Histogram: pipelined per-batch critical-path latency.
pub const LTPG_BATCH_CRITICAL_NS: &str = "ltpg.batch.critical_ns";
/// Counter: bytes uploaded per batch, accumulated.
pub const LTPG_BYTES_H2D: &str = "ltpg.bytes_h2d";
/// Counter: bytes downloaded per batch, accumulated.
pub const LTPG_BYTES_D2H: &str = "ltpg.bytes_d2h";
/// Counter: delayed (commutative) operations merged at writeback.
pub const LTPG_DELAYED_OPS_APPLIED: &str = "ltpg.delayed_ops_applied";
/// Gauge: bytes currently allocated to the device-resident conflict log.
pub const LTPG_CONFLICT_LOG_BYTES: &str = "ltpg.conflict_log.bytes";
/// Counter: conflict-log bucket registrations (host-observed accesses).
pub const LTPG_CONFLICT_LOG_ACCESSES: &str = "ltpg.conflict_log.accesses";

// --- abort-reason taxonomy --------------------------------------------------

/// Counter: transactions aborted because they lost a WAW/RAW race.
pub const ABORT_CONFLICT_LOSER: &str = "ltpg.aborts.conflict_loser";
/// Counter: transactions aborted because the conflict log ran out of slots.
pub const ABORT_LOG_EXHAUSTED: &str = "ltpg.aborts.log_exhausted";
/// Counter: transactions force-aborted for reading a commutatively-delayed value.
pub const ABORT_DELAYED_READ: &str = "ltpg.aborts.delayed_read";
/// Counter: transactions whose RAW∧WAR pattern defeated logical reordering.
pub const ABORT_REORDER_REJECTED: &str = "ltpg.aborts.reorder_rejected";
/// Counter: transactions aborted by user logic (explicit abort).
pub const ABORT_USER: &str = "ltpg.aborts.user";

/// All abort-reason counters, in export order. Handy for summaries and tests.
pub const ABORT_REASONS: [&str; 5] = [
    ABORT_CONFLICT_LOSER,
    ABORT_LOG_EXHAUSTED,
    ABORT_DELAYED_READ,
    ABORT_REORDER_REJECTED,
    ABORT_USER,
];

// --- server -----------------------------------------------------------------

/// Counter: server ticks that executed a batch.
pub const SERVER_TICKS: &str = "server.ticks";
/// Counter: batches executed by the server (incl. degraded ones).
pub const SERVER_BATCHES: &str = "server.batches";
/// Counter: transactions committed by the server.
pub const SERVER_COMMITTED: &str = "server.committed";
/// Counter: abort events observed by the server.
pub const SERVER_ABORT_EVENTS: &str = "server.abort_events";
/// Histogram: per-batch simulated latency as observed by the server
/// (includes retry backoff pauses).
pub const SERVER_BATCH_NS: &str = "server.batch_ns";
/// Gauge: transactions admitted but not yet executed.
pub const SERVER_PENDING: &str = "server.pending";
/// Counter: checkpoints taken.
pub const SERVER_CHECKPOINTS: &str = "server.checkpoints";

// --- durability -------------------------------------------------------------

/// Counter: frames appended to the write-ahead log.
pub const WAL_FRAMES_APPENDED: &str = "wal.frames_appended";
/// Counter: bytes appended to the write-ahead log.
pub const WAL_BYTES_APPENDED: &str = "wal.bytes_appended";
/// Counter: frames replayed during crash recovery.
pub const WAL_FRAMES_REPLAYED: &str = "wal.recovery.frames_replayed";
/// Counter: torn-tail bytes truncated during crash recovery.
pub const WAL_BYTES_TRUNCATED: &str = "wal.recovery.bytes_truncated";

// --- fault counters (mirrored by `FaultStats`) ------------------------------

/// Counter: transient device faults absorbed by retrying (uploads, downloads
/// and whole-attempt retries alike).
pub const FAULT_TRANSIENT_RETRIES: &str = "faults.transient_retries";
/// Counter: simulated nanoseconds spent in retry backoff (stored as integer ns).
pub const FAULT_BACKOFF_NS: &str = "faults.backoff_ns";
/// Counter: simulated nanoseconds of extra transfer time charged by in-place
/// retries of transient download faults (the wasted PCIe round trips). Like
/// [`FAULT_BACKOFF_NS`] this is fault-induced delay: consumers that need a
/// fault-invariant view of engine time (the ingestion front-end's steady
/// clock) subtract both.
pub const FAULT_RETRY_PENALTY_NS: &str = "faults.retry_penalty_ns";
/// Counter: torn WAL frames dropped during degraded recovery.
pub const FAULT_FRAMES_TRUNCATED: &str = "faults.frames_truncated";
/// Counter: bytes truncated from the WAL during degraded recovery.
pub const FAULT_BYTES_TRUNCATED: &str = "faults.bytes_truncated";
/// Counter: graceful degradations to the CPU fallback engine.
pub const FAULT_FALLBACK_ACTIVATIONS: &str = "faults.fallback_activations";

/// All fault counters, in export order.
pub const FAULT_COUNTERS: [&str; 6] = [
    FAULT_TRANSIENT_RETRIES,
    FAULT_BACKOFF_NS,
    FAULT_RETRY_PENALTY_NS,
    FAULT_FRAMES_TRUNCATED,
    FAULT_BYTES_TRUNCATED,
    FAULT_FALLBACK_ACTIVATIONS,
];

// --- differential QA harness (`ltpg-qa`) ------------------------------------

/// Counter: fuzz cases generated and executed.
pub const QA_CASES: &str = "qa.cases";
/// Counter: transactions generated across all fuzz cases.
pub const QA_TXNS: &str = "qa.txns";
/// Counter: cases whose execution paths diverged (before shrinking).
pub const QA_DIVERGENCES: &str = "qa.divergences";
/// Counter: shrink candidates evaluated while minimizing divergent cases.
pub const QA_SHRINK_STEPS: &str = "qa.shrink.steps";
/// Counter: minimized repro files written.
pub const QA_REPROS_WRITTEN: &str = "qa.repros_written";

// --- sharded multi-device execution -----------------------------------------

/// Counter: sharded-server ticks that executed a batch.
pub const SHARD_TICKS: &str = "shard.ticks";
/// Counter: transactions routed to exactly one shard.
pub const SHARD_SINGLE_TXNS: &str = "shard.route.single_txns";
/// Counter: transactions routed to several (but not all) shards.
pub const SHARD_CROSS_TXNS: &str = "shard.route.cross_txns";
/// Counter: transactions broadcast to every shard (undeclarable access sets
/// or writes to replicated tables).
pub const SHARD_BROADCAST_TXNS: &str = "shard.route.broadcast_txns";
/// Histogram: per-tick simulated ns a shard spent waiting at the merge
/// barrier for the slowest participant (max prepare time minus its own).
pub const SHARD_MERGE_STALL_NS: &str = "shard.merge.stall_ns";
/// Histogram: per-tick simulated critical-path ns across all shards
/// (slowest shard's prepare + finish).
pub const SHARD_TICK_NS: &str = "shard.tick_ns";
/// Gauge: shards currently degraded to the CPU fallback.
pub const SHARD_DEGRADED: &str = "shard.degraded";

// --- ingestion front-end (`ltpg-front`) --------------------------------------

/// Counter: transactions offered to the front-end by clients (open-loop
/// arrivals, before any admission decision).
pub const FRONT_SUBMITTED: &str = "front.submitted";
/// Counter: transactions admitted past rate limiting and queue bounds.
pub const FRONT_ADMITTED: &str = "front.admitted";
/// Counter: admitted transactions committed by the engine (each once).
pub const FRONT_COMMITTED: &str = "front.committed";
/// Counter: transactions shed by a per-client rate limit.
pub const FRONT_SHED_RATE_LIMITED: &str = "front.shed.rate_limited";
/// Counter: transactions shed because the submitting client's bounded
/// channel was full — the per-client backpressure signal.
pub const FRONT_SHED_BACKPRESSURE: &str = "front.shed.backpressure";
/// Counter: transactions shed because the global unsealed-queue bound was
/// reached (aggregate overload, regardless of client).
pub const FRONT_SHED_QUEUE_FULL: &str = "front.shed.queue_full";
/// Counter: queued transactions shed after waiting longer than the queue
/// timeout without being sealed into a batch.
pub const FRONT_SHED_TIMED_OUT: &str = "front.shed.timed_out";
/// Counter: batches sealed (size-, deadline- and drain-triggered alike).
pub const FRONT_BATCHES_SEALED: &str = "front.batches_sealed";
/// Counter: batches sealed because they reached the configured size.
pub const FRONT_SEALS_SIZE: &str = "front.seal.size";
/// Counter: batches sealed because the oldest member hit the deadline.
pub const FRONT_SEALS_DEADLINE: &str = "front.seal.deadline";
/// Counter: batches force-sealed while draining the pipeline at shutdown.
pub const FRONT_SEALS_DRAIN: &str = "front.seal.drain";
/// Histogram: transactions per sealed batch (fill level).
pub const FRONT_BATCH_FILL: &str = "front.batch_fill";
/// Histogram: simulated ns a transaction waited between arrival and its
/// batch sealing.
pub const FRONT_QUEUE_WAIT_NS: &str = "front.queue_wait_ns";
/// Histogram: simulated ns from a transaction's arrival to its commit
/// (end-to-end latency through streamer → batcher → engine, including
/// abort/re-execution rounds).
pub const FRONT_E2E_NS: &str = "front.e2e_ns";
/// Gauge: transactions queued in the front-end (client channels plus the
/// open batch), i.e. admitted but not yet dispatched.
pub const FRONT_QUEUE_DEPTH: &str = "front.queue_depth";

/// Every shed-path counter, in export order. The conservation invariant
/// extends over these: `committed + pending + Σ shed == submitted`.
pub const FRONT_SHED_COUNTERS: [&str; 4] = [
    FRONT_SHED_RATE_LIMITED,
    FRONT_SHED_BACKPRESSURE,
    FRONT_SHED_QUEUE_FULL,
    FRONT_SHED_TIMED_OUT,
];

// --- competing schedulers (`ltpg-baselines`) ---------------------------------

/// Histogram: optimistic-execution waves Block-STM needed per batch (1 =
/// everything validated on the first try).
pub const BLOCKSTM_WAVES: &str = "blockstm.waves";
/// Counter: transaction-wave deferrals — a transaction whose reads were
/// invalidated by an earlier transaction's writes and had to re-execute in
/// a later wave. The per-batch deferral fraction is the scheduler's
/// RAW-pressure signal (blind writes never defer).
pub const BLOCKSTM_DEFERRALS: &str = "blockstm.deferrals";
/// Histogram: conflict-graph depth (layer count) per address-graph batch
/// (1 = the whole batch ran as a single parallel layer).
pub const ADDRGRAPH_LAYERS: &str = "addrgraph.layers";
/// Counter: transactions with undeclarable access sets that the
/// address-graph scheduler ran as serial barrier layers.
pub const ADDRGRAPH_UNDECLARED: &str = "addrgraph.undeclared_txns";

// --- adaptive concurrency control (`ltpg::AdaptiveEngine`) -------------------

/// Counter: batches the adaptive policy routed to the LTPG engine.
pub const ADAPTIVE_CHOICE_LTPG: &str = "adaptive.choice.ltpg";
/// Counter: batches the adaptive policy routed to Block-STM.
pub const ADAPTIVE_CHOICE_BLOCKSTM: &str = "adaptive.choice.blockstm";
/// Counter: batches the adaptive policy routed to the address-graph
/// scheduler.
pub const ADAPTIVE_CHOICE_ADDRGRAPH: &str = "adaptive.choice.addrgraph";
/// Counter: batches where the adaptive policy picked a different engine
/// than the previous batch.
pub const ADAPTIVE_SWITCHES: &str = "adaptive.switches";

/// All adaptive per-engine choice counters, in export order.
pub const ADAPTIVE_CHOICES: [&str; 3] =
    [ADAPTIVE_CHOICE_LTPG, ADAPTIVE_CHOICE_BLOCKSTM, ADAPTIVE_CHOICE_ADDRGRAPH];

// --- elastic sharding (`ltpg-shard` rebalance) -------------------------------

/// Counter: rebalance plans applied at a cutover boundary.
pub const REBALANCE_PLANS_APPLIED: &str = "rebalance.plans_applied";
/// Counter: range splits executed (one per Split op applied).
pub const REBALANCE_SPLITS: &str = "rebalance.splits";
/// Counter: range merges executed (one per Merge op applied).
pub const REBALANCE_MERGES: &str = "rebalance.merges";
/// Counter: range moves executed (one per Move op applied).
pub const REBALANCE_MOVES: &str = "rebalance.moves";
/// Counter: wholesale rule replacements executed (one per SetRule op).
pub const REBALANCE_SET_RULES: &str = "rebalance.set_rules";
/// Counter: rows copied between shard slices at cutover boundaries.
pub const REBALANCE_ROWS_MIGRATED: &str = "rebalance.rows_migrated";
/// Counter: plans emitted by the load-driven planner (scheduled plans,
/// whether or not they have cut over yet).
pub const REBALANCE_PLANNER_EMITTED: &str = "rebalance.planner.emitted";
/// Histogram: wall-clock ns spent applying one cutover (slice rebuild,
/// row migration, engine reinstall, checkpoint, replica re-attach).
pub const REBALANCE_CUTOVER_NS: &str = "rebalance.cutover_ns";
/// Gauge: 1 while a plan is scheduled but has not cut over, else 0.
pub const REBALANCE_PENDING: &str = "rebalance.pending";

// --- replication & failover (`ltpg-replica`) --------------------------------

/// Counter: standbys promoted to primary (failover cutovers).
pub const REPLICA_PROMOTIONS: &str = "replica.promotions";
/// Counter: primaries demoted out of service (device loss or health
/// verdict) plus standby rows dropped as dead.
pub const REPLICA_DEMOTIONS: &str = "replica.demotions";
/// Counter: recovered devices re-promoted from CPU fallback back to a GPU
/// engine, or re-enlisted into the standby pool.
pub const REPLICA_REPROMOTIONS: &str = "replica.repromotions";
/// Counter: batches applied to standbys by catch-up replay (both the
/// steady-state trickle and promotion-time catch-up).
pub const REPLICA_CATCHUP_BATCHES: &str = "replica.catchup_batches";
/// Counter: heartbeat probes that went unanswered (dropped or dead).
pub const REPLICA_HEARTBEAT_MISSES: &str = "replica.heartbeat.misses";
/// Histogram: simulated ns from loss detection to a promoted standby
/// ready to serve (catch-up replay included).
pub const REPLICA_FAILOVER_NS: &str = "replica.failover_ns";
/// Histogram: per-observation standby lag behind the logged tail, in
/// batches (recorded once per standby per tick).
pub const REPLICA_LAG_BATCHES: &str = "replica.lag_batches";
/// Gauge: standby rows currently alive and promotable.
pub const REPLICA_STANDBYS: &str = "replica.standbys";

/// Per-standby lag gauge name: `replica.standby.<row>.lag_batches`.
/// Dynamic (allocated) names are supported by the registry; this helper
/// keeps the format in one place.
pub fn replica_standby_lag_gauge(row: usize) -> String {
    format!("replica.standby.{row}.lag_batches")
}
