//! Span-style phase tracing over a bounded ring buffer.
//!
//! The trace log keeps the most recent `capacity` events; older events are
//! evicted, with [`TraceLog::dropped`] reporting how many were lost. Events
//! carry a monotone sequence number so consumers can detect gaps. Timestamps
//! are plain `f64` nanoseconds: LTPG phases record *simulated* time through
//! [`TraceLog::record`], while wall-clock instrumentation uses the [`Span`]
//! drop guard, whose timestamps are relative to the log's creation instant.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One traced span.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Monotone sequence number (gap-free per log; gaps mean eviction).
    pub seq: u64,
    /// Static span name, e.g. `"ltpg.phase.execute"`.
    pub name: &'static str,
    /// Span start in nanoseconds (simulated or wall-clock, caller-defined).
    pub start_ns: f64,
    /// Span duration in nanoseconds.
    pub dur_ns: f64,
}

struct Inner {
    next_seq: u64,
    events: VecDeque<TraceEvent>,
}

/// Bounded ring buffer of [`TraceEvent`]s.
pub struct TraceLog {
    cap: usize,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl TraceLog {
    /// Create a log retaining at most `cap` events (`cap` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                next_seq: 0,
                // Pre-size to the cap: the ring then never reallocates, so
                // steady-state span recording stays off the heap (the
                // engine's zero-allocation tick invariant depends on it).
                events: VecDeque::with_capacity(cap.max(1)),
            }),
        }
    }

    /// Append a span with caller-supplied timestamps (typically simulated ns).
    pub fn record(&self, name: &'static str, start_ns: f64, dur_ns: f64) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.cap {
            inner.events.pop_front();
        }
        inner.events.push_back(TraceEvent {
            seq,
            name,
            start_ns,
            dur_ns,
        });
    }

    /// Start a wall-clock span recorded (relative to the log's creation)
    /// when the guard drops.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            log: self,
            name,
            started: Instant::now(),
        }
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.next_seq - inner.events.len() as u64
    }
}

/// Wall-clock drop guard created by [`TraceLog::span`].
pub struct Span<'a> {
    log: &'a TraceLog,
    name: &'static str,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let start_ns = self
            .started
            .duration_since(self.log.epoch)
            .as_secs_f64()
            * 1e9;
        let dur_ns = self.started.elapsed().as_secs_f64() * 1e9;
        self.log.record(self.name, start_ns, dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let log = TraceLog::new(3);
        for i in 0..5 {
            log.record("t", f64::from(i), 1.0);
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let log = TraceLog::new(8);
        {
            let _s = log.span("guarded");
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "guarded");
        assert!(snap[0].dur_ns >= 0.0);
    }
}
