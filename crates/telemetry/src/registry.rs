//! Named-metric registry: counters, gauges and histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

use crate::histogram::Histogram;
use crate::trace::{Span, TraceLog};

/// A monotone `u64` counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A signed gauge holding the latest observation of some level quantity.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replace the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adjust the current value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Default capacity of the registry's trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A registry of named metrics plus a bounded trace log.
///
/// Lookups take a read lock on a `BTreeMap` (deterministic export order);
/// hot paths should cache the returned `Arc` handles and update those
/// directly — updates themselves are wait-free atomics.
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    trace: TraceLog,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an empty registry with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Create an empty registry whose trace ring buffer holds at most
    /// `cap` events (older events are evicted first).
    pub fn with_trace_capacity(cap: usize) -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            trace: TraceLog::new(cap),
        }
    }

    /// Convenience: a freshly created registry behind an `Arc`.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Fetch-or-create the counter `name`. Creating registers it at zero, so
    /// pre-touching a counter makes it appear in exports even if never hit.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Fetch-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Fetch-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Current value of counter `name`, or 0 when it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.get())
    }

    /// Current value of gauge `name`, or 0 when it was never registered.
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges
            .read()
            .unwrap()
            .get(name)
            .map_or(0, |g| g.get())
    }

    /// The registry's bounded trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Start a wall-clock span that records into [`Registry::trace`] when
    /// dropped. Simulated-time phases should use [`TraceLog::record`] instead.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.trace.span(name)
    }

    /// Render every metric plus the trace buffer as JSON Lines.
    /// See [`crate::export`] for the schema.
    pub fn export_jsonl(&self) -> String {
        crate::export::export_jsonl(self)
    }

    /// Visit all counters in name order.
    pub(crate) fn for_each_counter(&self, mut f: impl FnMut(&str, u64)) {
        for (name, c) in self.counters.read().unwrap().iter() {
            f(name, c.get());
        }
    }

    /// Visit all gauges in name order.
    pub(crate) fn for_each_gauge(&self, mut f: impl FnMut(&str, i64)) {
        for (name, g) in self.gauges.read().unwrap().iter() {
            f(name, g.get());
        }
    }

    /// Visit all histograms in name order.
    pub(crate) fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in self.histograms.read().unwrap().iter() {
            f(name, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(4);
        r.gauge("g").set(-7);
        r.gauge("g").add(10);
        assert_eq!(r.counter_value("a"), 5);
        assert_eq!(r.gauge_value("g"), 3);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.gauge_value("missing"), 0);
    }

    #[test]
    fn handles_alias_the_same_metric() {
        let r = Registry::new();
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        h1.record(10);
        h2.record(20);
        assert_eq!(r.histogram("lat").count(), 2);
    }

    #[test]
    fn pre_touched_counter_exports_as_zero() {
        let r = Registry::new();
        r.counter("zero.metric");
        let mut seen = Vec::new();
        r.for_each_counter(|n, v| seen.push((n.to_string(), v)));
        assert_eq!(seen, vec![("zero.metric".to_string(), 0)]);
    }
}
