//! JSONL export and a minimal JSON validator.
//!
//! One JSON object per line. The first line is a schema header; subsequent
//! lines carry one metric or trace event each:
//!
//! ```json
//! {"type":"meta","schema":"ltpg-telemetry-v1"}
//! {"type":"counter","name":"ltpg.bytes_h2d","value":81920}
//! {"type":"gauge","name":"server.pending","value":0}
//! {"type":"histogram","name":"server.batch_ns","count":8,"sum":1200,"min":100,
//!  "max":220,"p50":160,"p95":224,"p99":224,"buckets":[[96,3],[160,5]]}
//! {"type":"span","name":"ltpg.phase.execute","seq":4,"start_ns":120.0,"dur_ns":88.5}
//! ```
//!
//! Histogram `buckets` entries are `[bucket_lower_bound, sample_count]`
//! pairs for non-empty buckets only, ascending by bound.
//!
//! The vendored `serde_json` in this workspace is serialize-only, so the
//! validator here ([`validate_jsonl`]/[`parse_json`]) is a small hand-rolled
//! recursive-descent parser — enough for tests and CI smoke jobs to check
//! that what we emit actually parses and carries the expected keys.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::registry::Registry;

/// Schema identifier written on the first line of every export.
pub const SCHEMA: &str = "ltpg-telemetry-v1";

/// Append `s` to `out` as a JSON string literal (with escaping).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a finite `f64` as a JSON number (non-finite values become 0).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push('0');
    }
}

/// Render every metric in `reg` (and its trace buffer) as JSON Lines.
pub fn export_jsonl(reg: &Registry) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"meta\",\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\"}\n");

    reg.for_each_counter(|name, value| {
        out.push_str("{\"type\":\"counter\",\"name\":");
        push_json_str(&mut out, name);
        let _ = write!(out, ",\"value\":{value}}}");
        out.push('\n');
    });
    reg.for_each_gauge(|name, value| {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        push_json_str(&mut out, name);
        let _ = write!(out, ",\"value\":{value}}}");
        out.push('\n');
    });
    reg.for_each_histogram(|name, h| {
        let s = h.snapshot();
        out.push_str("{\"type\":\"histogram\",\"name\":");
        push_json_str(&mut out, name);
        let _ = write!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99
        );
        for (i, (lo, n)) in s.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{n}]");
        }
        out.push_str("]}\n");
    });
    for ev in reg.trace().snapshot() {
        out.push_str("{\"type\":\"span\",\"name\":");
        push_json_str(&mut out, ev.name);
        let _ = write!(out, ",\"seq\":{},\"start_ns\":", ev.seq);
        push_json_f64(&mut out, ev.start_ns);
        out.push_str(",\"dur_ns\":");
        push_json_f64(&mut out, ev.dur_ns);
        out.push_str("}\n");
    }
    out
}

/// Export `reg` as JSONL and write it to `path` (creating parent dirs).
pub fn write_jsonl(path: &Path, reg: &Registry) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, export_jsonl(reg))
}

/// A parsed JSON value — just enough structure for validation.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up `key` in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// String payload of a `Str`, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload of a `Num`, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse one complete JSON document from `text`.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// Parse every non-empty line of a JSONL document, checking that each line is
/// an object with a string `"type"` field. Returns the parsed lines.
pub fn validate_jsonl(text: &str) -> Result<Vec<JsonValue>, String> {
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(JsonValue::as_str).is_none() {
            return Err(format!("line {}: missing string \"type\" field", i + 1));
        }
        lines.push(v);
    }
    if lines.is_empty() {
        return Err("empty JSONL document".to_string());
    }
    Ok(lines)
}

/// Find the first parsed line whose `"name"` equals `name`.
pub fn find_metric<'a>(lines: &'a [JsonValue], name: &str) -> Option<&'a JsonValue> {
    lines
        .iter()
        .find(|l| l.get("name").and_then(JsonValue::as_str) == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_the_validator() {
        let reg = Registry::new();
        reg.counter("c.one").add(41);
        reg.gauge("g.neg").set(-5);
        let h = reg.histogram("h.lat");
        for v in [10u64, 100, 1000, 10_000] {
            h.record(v);
        }
        reg.trace().record("phase.x", 0.0, 12.5);

        let text = export_jsonl(&reg);
        let lines = validate_jsonl(&text).expect("export must parse");
        assert_eq!(
            lines[0].get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        let c = find_metric(&lines, "c.one").unwrap();
        assert_eq!(c.get("value").and_then(JsonValue::as_f64), Some(41.0));
        let g = find_metric(&lines, "g.neg").unwrap();
        assert_eq!(g.get("value").and_then(JsonValue::as_f64), Some(-5.0));
        let hist = find_metric(&lines, "h.lat").unwrap();
        assert_eq!(hist.get("count").and_then(JsonValue::as_f64), Some(4.0));
        assert!(matches!(hist.get("buckets"), Some(JsonValue::Arr(b)) if b.len() == 4));
        let span = find_metric(&lines, "phase.x").unwrap();
        assert_eq!(span.get("type").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(span.get("dur_ns").and_then(JsonValue::as_f64), Some(12.5));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("{\"type\":\"meta\"").is_err());
        assert!(validate_jsonl("{\"no_type\":1}").is_err());
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("[1,2,3]").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"s":"x\n\"y\" A","b":true,"n":null}"#)
            .unwrap();
        assert_eq!(
            v.get("s").and_then(JsonValue::as_str),
            Some("x\n\"y\" A")
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items[2].as_f64(), Some(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
