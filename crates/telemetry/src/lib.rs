//! Lightweight observability substrate for the LTPG reproduction.
//!
//! The crate provides three building blocks, all `std`-only and lock-light so
//! they can sit on simulated-GPU hot paths without perturbing the costs the
//! simulator charges:
//!
//! * a [`Registry`] of named metrics — atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log-scale [`Histogram`]s with p50/p95/p99 readout;
//! * span-style phase tracing over a bounded ring buffer ([`TraceLog`]),
//!   fed either from simulated-time spans ([`TraceLog::record`]) or from
//!   wall-clock drop guards ([`Span`]);
//! * a JSONL exporter ([`Registry::export_jsonl`]) plus a minimal JSON
//!   validator ([`export::validate_jsonl`]) used by tests and CI smoke jobs
//!   (the vendored `serde_json` is serialize-only, so validation is local).
//!
//! Metric naming is centralised in [`names`] so every crate that reports a
//! given quantity agrees on the key that lands in the JSONL stream.
//!
//! # Ownership model
//!
//! Components that live inside one server instance share that server's
//! `Arc<Registry>` so two servers in one process (e.g. a test harness running
//! a reference and a subject side by side) never cross-contaminate. Free
//! standing components (bench binaries, examples, the storage layer) default
//! to the process-wide [`global()`] registry.

#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod names;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{Span, TraceEvent, TraceLog};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide default registry.
///
/// Components that are not owned by a server instance (bench drivers,
/// examples, the WAL) report here. The registry is created on first use and
/// lives for the remainder of the process.
pub fn global() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Arc::clone(global());
        a.counter("test.global").add(3);
        assert_eq!(global().counter_value("test.global"), 3);
    }
}
