//! Fixed-bucket log-scale histogram with quantile readout.
//!
//! Buckets follow an HDR-style layout: values `0..4` get exact buckets, and
//! every further power-of-two octave is split into four sub-buckets keyed by
//! the two bits below the leading one. Relative bucket error is therefore at
//! most 25% across the whole range, with a fixed memory footprint and
//! wait-free recording (one `fetch_add` per sample).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 2;
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: exact buckets for `0..SUBS`, then 4 sub-buckets per
/// octave up to `u64::MAX` (octaves `SUB_BITS..64`), plus nothing else — the
/// top bucket absorbs any overflow.
const BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// Map a sample to its bucket index. Monotone non-decreasing in `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let oct = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (oct - u64::from(SUB_BITS))) & (SUBS - 1);
    let idx = (oct - u64::from(SUB_BITS) + 1) * SUBS + sub;
    (idx as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `idx` (the smallest value that maps there).
fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        return idx;
    }
    let oct = idx / SUBS + u64::from(SUB_BITS) - 1;
    let sub = idx % SUBS;
    (1 << oct) + (sub << (oct - u64::from(SUB_BITS)))
}

/// Inclusive upper bound of bucket `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// A wait-free log-scale histogram of `u64` samples (typically nanoseconds).
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a simulated-time duration expressed in (possibly fractional)
    /// nanoseconds. Negative or non-finite samples are clamped to zero.
    pub fn record_ns(&self, ns: f64) {
        let v = if ns.is_finite() && ns > 0.0 { ns.round() as u64 } else { 0 };
        self.record(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket containing the ranked sample, clamped to the observed maximum.
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Relaxed);
            if seen >= rank {
                return Some(bucket_upper(idx).min(self.max.load(Relaxed)));
            }
        }
        Some(self.max.load(Relaxed))
    }

    /// Take a consistent-enough snapshot for export (metrics are monotone, so
    /// slight skew between fields under concurrent writers is acceptable).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let n = c.load(Relaxed);
                (n > 0).then_some((bucket_lower(idx), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 { 0 } else { self.min.load(Relaxed) },
            max: self.max.load(Relaxed),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`], used by the JSONL exporter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// `(bucket_lower_bound, sample_count)` for every non-empty bucket,
    /// ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_range_without_gaps() {
        // Every bucket's upper bound is one below the next bucket's lower
        // bound, and the index function maps both bounds back to the bucket.
        for idx in 0..BUCKETS - 1 {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo <= hi, "bucket {idx}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            assert_eq!(bucket_lower(idx + 1), hi + 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Within one octave the bucket width is a quarter of the octave base,
        // so upper/lower <= 1.25 for all buckets past the exact range.
        for idx in 4..BUCKETS - 1 {
            let lo = bucket_lower(idx) as f64;
            let hi = bucket_upper(idx) as f64;
            assert!(hi / lo <= 1.25 + 1e-12, "bucket {idx}: {lo}..{hi}");
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log-scale buckets: the estimate must bracket the true quantile
        // within one bucket (<= 25% high, never below the true rank value).
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0).unwrap() == 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn record_ns_clamps_pathological_samples() {
        let h = Histogram::new();
        h.record_ns(-5.0);
        h.record_ns(f64::NAN);
        h.record_ns(1536.4);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert!(s.max >= 1536);
    }
}
