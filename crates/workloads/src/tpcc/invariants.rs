//! TPC-C consistency conditions, adapted to the tables this reproduction
//! maintains. Engines must preserve these across any committed set:
//!
//! 1. Per warehouse: `W_YTD = Σ_d D_YTD` (Payment adds the amount to both).
//! 2. Per district: `D_NEXT_O_ID − 1 =` number of ORDERS rows of that
//!    district (NewOrder counts the order and inserts exactly one row).
//! 3. Undelivered ORDERS (carrier = 0) and NEW_ORDER rows are in
//!    one-to-one correspondence (Delivery removes the NEW_ORDER row when
//!    it stamps a carrier), and each order has exactly `O_OL_CNT`
//!    ORDER_LINE rows.

use std::collections::HashMap;

use ltpg_storage::{Database, RowId};

use super::keys::{dist_key, order_key_district, DISTRICTS_PER_W};
use super::schema::{cols, TpccTables};

/// A violated consistency condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError(pub String);

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TPC-C invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantError {}

/// Check all supported consistency conditions over `db`.
pub fn check_invariants(
    db: &Database,
    t: &TpccTables,
    warehouses: i64,
) -> Result<(), InvariantError> {
    // 1. W_YTD = Σ D_YTD per warehouse.
    for w in 1..=warehouses {
        let wt = db.table(t.warehouse);
        let rid = wt
            .lookup(super::keys::wh_key(w))
            .ok_or_else(|| InvariantError(format!("warehouse {w} missing")))?;
        let w_ytd = wt.get(rid, cols::W_YTD);
        let mut d_sum = 0i64;
        for d in 1..=DISTRICTS_PER_W {
            let dt = db.table(t.district);
            let drid = dt
                .lookup(dist_key(w, d))
                .ok_or_else(|| InvariantError(format!("district ({w},{d}) missing")))?;
            d_sum += dt.get(drid, cols::D_YTD);
        }
        if w_ytd != d_sum {
            return Err(InvariantError(format!(
                "warehouse {w}: W_YTD {w_ytd} != sum of D_YTD {d_sum}"
            )));
        }
    }

    // 2 & 3. Order counts per district and ORDERS↔NEW_ORDER↔ORDER_LINE.
    let orders = db.table(t.orders);
    let mut per_district: HashMap<i64, i64> = HashMap::new();
    let mut ol_expected = 0usize;
    let mut undelivered = 0usize;
    for r in 0..orders.len() {
        let rid = RowId(r as u32);
        let Some(key) = orders.key_of(rid) else { continue };
        *per_district.entry(order_key_district(key)).or_default() += 1;
        ol_expected += orders.get(rid, cols::O_OL_CNT) as usize;
        let delivered = orders.get(rid, cols::O_CARRIER_ID) != 0;
        if delivered {
            if db.table(t.new_order).lookup(key).is_some() {
                return Err(InvariantError(format!(
                    "delivered order {key} still has a NEW_ORDER row"
                )));
            }
        } else {
            undelivered += 1;
            if db.table(t.new_order).lookup(key).is_none() {
                return Err(InvariantError(format!("order {key} has no NEW_ORDER row")));
            }
        }
    }
    if db.table(t.new_order).live_rows() != undelivered {
        return Err(InvariantError(format!(
            "NEW_ORDER rows {} != undelivered ORDERS {}",
            db.table(t.new_order).live_rows(),
            undelivered
        )));
    }
    if db.table(t.order_line).live_rows() != ol_expected {
        return Err(InvariantError(format!(
            "ORDER_LINE rows {} != sum of O_OL_CNT {}",
            db.table(t.order_line).live_rows(),
            ol_expected
        )));
    }
    for w in 1..=warehouses {
        for d in 1..=DISTRICTS_PER_W {
            let dt = db.table(t.district);
            let drid = dt.lookup(dist_key(w, d)).expect("checked above");
            let next = dt.get(drid, cols::D_NEXT_O_ID);
            let count = per_district.get(&dist_key(w, d)).copied().unwrap_or(0);
            if next - 1 != count {
                return Err(InvariantError(format!(
                    "district ({w},{d}): D_NEXT_O_ID {next} inconsistent with {count} orders"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::gen::{TpccConfig, TpccGenerator};
    use super::*;
    use ltpg_txn::{execute_serial, Batch, TidGen};

    #[test]
    fn invariants_hold_after_serial_batches() {
        let (db, t, mut g) = TpccGenerator::new(TpccConfig::new(2, 50).with_headroom(2_048));
        check_invariants(&db, &t, 2).unwrap();
        let mut gen = TidGen::new();
        for _ in 0..3 {
            let batch = Batch::assemble(vec![], g.gen_batch(100), &mut gen);
            for txn in &batch.txns {
                execute_serial(&db, txn).unwrap();
            }
            check_invariants(&db, &t, 2).unwrap();
        }
    }

    #[test]
    fn ytd_corruption_is_detected() {
        let (db, t, _g) = TpccGenerator::new(TpccConfig::new(1, 50).with_headroom(64));
        let wt = db.table(t.warehouse);
        let rid = wt.lookup(1).unwrap();
        wt.add(rid, cols::W_YTD, 5);
        let err = check_invariants(&db, &t, 1).unwrap_err();
        assert!(err.0.contains("W_YTD"));
    }

    #[test]
    fn dangling_order_is_detected() {
        let (db, t, _g) = TpccGenerator::new(TpccConfig::new(1, 50).with_headroom(64));
        // An order without NEW_ORDER row / district count.
        db.table(t.orders)
            .insert(super::super::keys::order_key(1, 1, 7), &[1, 1, 0, 5, 1])
            .unwrap();
        assert!(check_invariants(&db, &t, 1).is_err());
    }
}
