//! TPC-C table schemas (integer attributes only) and database population.

use ltpg_storage::{ColId, Database, Table, TableBuilder, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::keys::{
    cust_key, dist_key, stock_key, wh_key, CUSTOMERS_PER_D, DISTRICTS_PER_W, ITEMS,
};

/// Column indexes per table, named after their TPC-C counterparts.
pub mod cols {
    #![allow(missing_docs)]
    use ltpg_storage::ColId;

    pub const W_TAX: ColId = ColId(0);
    pub const W_YTD: ColId = ColId(1);
    pub const W_ZIP: ColId = ColId(2);

    pub const D_TAX: ColId = ColId(0);
    pub const D_YTD: ColId = ColId(1);
    pub const D_NEXT_O_ID: ColId = ColId(2);
    pub const D_ZIP: ColId = ColId(3);

    pub const C_BALANCE: ColId = ColId(0);
    pub const C_YTD_PAYMENT: ColId = ColId(1);
    pub const C_PAYMENT_CNT: ColId = ColId(2);
    pub const C_DISCOUNT: ColId = ColId(3);
    pub const C_CREDIT: ColId = ColId(4);
    pub const C_DELIVERY_CNT: ColId = ColId(5);

    pub const I_PRICE: ColId = ColId(0);
    pub const I_IM_ID: ColId = ColId(1);
    pub const I_DATA: ColId = ColId(2);

    pub const S_QUANTITY: ColId = ColId(0);
    pub const S_YTD: ColId = ColId(1);
    pub const S_ORDER_CNT: ColId = ColId(2);
    pub const S_REMOTE_CNT: ColId = ColId(3);

    pub const O_C_ID: ColId = ColId(0);
    pub const O_ENTRY_D: ColId = ColId(1);
    pub const O_CARRIER_ID: ColId = ColId(2);
    pub const O_OL_CNT: ColId = ColId(3);
    pub const O_ALL_LOCAL: ColId = ColId(4);

    pub const NO_FLAG: ColId = ColId(0);

    pub const OL_I_ID: ColId = ColId(0);
    pub const OL_SUPPLY_W: ColId = ColId(1);
    pub const OL_QUANTITY: ColId = ColId(2);
    pub const OL_AMOUNT: ColId = ColId(3);
    pub const OL_DELIVERY_D: ColId = ColId(4);

    pub const H_C_ID: ColId = ColId(0);
    pub const H_D_ID: ColId = ColId(1);
    pub const H_W_ID: ColId = ColId(2);
    pub const H_AMOUNT: ColId = ColId(3);
    pub const H_DATE: ColId = ColId(4);
}

/// Table ids of a populated TPC-C database.
#[derive(Debug, Clone, Copy)]
pub struct TpccTables {
    /// WAREHOUSE.
    pub warehouse: TableId,
    /// DISTRICT.
    pub district: TableId,
    /// CUSTOMER.
    pub customer: TableId,
    /// ITEM.
    pub item: TableId,
    /// STOCK.
    pub stock: TableId,
    /// ORDERS.
    pub orders: TableId,
    /// NEW_ORDER.
    pub new_order: TableId,
    /// ORDER_LINE.
    pub order_line: TableId,
    /// HISTORY.
    pub history: TableId,
}

/// Initial W_YTD (cents). The invariant `W_YTD = Σ D_YTD` must hold at
/// population time: `300_000 = 10 × 30_000`.
pub const INIT_W_YTD: i64 = 300_000;
/// Initial D_YTD (cents).
pub const INIT_D_YTD: i64 = 30_000;

/// Build and populate a TPC-C database for `warehouses`, leaving
/// `insert_headroom` spare rows in each insert-target table (ORDERS,
/// NEW_ORDER, HISTORY; ORDER_LINE gets 15× that).
#[allow(dead_code)]
pub(crate) fn build_database(warehouses: i64, insert_headroom: usize, seed: u64) -> (Database, TpccTables) {
    build_database_with(warehouses, insert_headroom, seed, false)
}

/// [`build_database`] with optional ordered (B+tree) indexing of the STOCK
/// table, needed by the full-mix StockLevel transaction. NEW_ORDER and
/// ORDER_LINE always carry ordered indexes (they start empty, so the cost
/// is nil; Delivery and OrderStatus range over them).
pub fn build_database_with(
    warehouses: i64,
    insert_headroom: usize,
    seed: u64,
    ordered_stock: bool,
) -> (Database, TpccTables) {
    assert!(warehouses >= 1, "need at least one warehouse");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7063_7074);
    let mut db = Database::new();
    let w_cnt = warehouses as usize;
    let d_cnt = w_cnt * DISTRICTS_PER_W as usize;
    let c_cnt = d_cnt * CUSTOMERS_PER_D as usize;
    let s_cnt = w_cnt * ITEMS as usize;

    let warehouse = db.add_table(
        TableBuilder::new("WAREHOUSE").columns(["W_TAX", "W_YTD", "W_ZIP"]).capacity(w_cnt).build(),
    );
    let district = db.add_table(
        TableBuilder::new("DISTRICT")
            .columns(["D_TAX", "D_YTD", "D_NEXT_O_ID", "D_ZIP"])
            .capacity(d_cnt)
            .build(),
    );
    let customer = db.add_table(
        TableBuilder::new("CUSTOMER")
            .columns([
                "C_BALANCE",
                "C_YTD_PAYMENT",
                "C_PAYMENT_CNT",
                "C_DISCOUNT",
                "C_CREDIT",
                "C_DELIVERY_CNT",
            ])
            .capacity(c_cnt)
            .build(),
    );
    let item = db.add_table(
        TableBuilder::new("ITEM")
            .columns(["I_PRICE", "I_IM_ID", "I_DATA"])
            .capacity(ITEMS as usize)
            .build(),
    );
    let stock_schema = TableBuilder::new("STOCK")
        .columns(["S_QUANTITY", "S_YTD", "S_ORDER_CNT", "S_REMOTE_CNT"])
        .capacity(s_cnt)
        .build();
    let stock = if ordered_stock {
        db.add_built_table(Table::new(stock_schema).with_ordered())
    } else {
        db.add_table(stock_schema)
    };
    let orders = db.add_table(
        TableBuilder::new("ORDERS")
            .columns(["O_C_ID", "O_ENTRY_D", "O_CARRIER_ID", "O_OL_CNT", "O_ALL_LOCAL"])
            .capacity(insert_headroom.max(1))
            .build(),
    );
    let new_order = db.add_built_table(
        Table::new(
            TableBuilder::new("NEW_ORDER").column("NO_FLAG").capacity(insert_headroom.max(1)).build(),
        )
        .with_ordered(),
    );
    let order_line = db.add_built_table(
        Table::new(
            TableBuilder::new("ORDER_LINE")
                .columns(["OL_I_ID", "OL_SUPPLY_W", "OL_QUANTITY", "OL_AMOUNT", "OL_DELIVERY_D"])
                .capacity(insert_headroom.saturating_mul(15).max(1))
                .build(),
        )
        .with_ordered(),
    );
    let history = db.add_table(
        TableBuilder::new("HISTORY")
            .columns(["H_C_ID", "H_D_ID", "H_W_ID", "H_AMOUNT", "H_DATE"])
            .capacity(insert_headroom.max(1))
            .build(),
    );

    for w in 1..=warehouses {
        db.table(warehouse)
            .insert(wh_key(w), &[rng.gen_range(0..=2_000), INIT_W_YTD, rng.gen_range(10_000..=99_999)])
            .expect("warehouse insert");
        for d in 1..=DISTRICTS_PER_W {
            db.table(district)
                .insert(
                    dist_key(w, d),
                    &[rng.gen_range(0..=2_000), INIT_D_YTD, 1, rng.gen_range(10_000..=99_999)],
                )
                .expect("district insert");
            for c in 1..=CUSTOMERS_PER_D {
                db.table(customer)
                    .insert(
                        cust_key(w, d, c),
                        &[
                            -1_000,                      // C_BALANCE (cents)
                            1_000,                       // C_YTD_PAYMENT
                            1,                           // C_PAYMENT_CNT
                            rng.gen_range(0..=5_000),    // C_DISCOUNT (basis points)
                            i64::from(rng.gen_bool(0.9)), // C_CREDIT: 1 = good
                            0,                           // C_DELIVERY_CNT
                        ],
                    )
                    .expect("customer insert");
            }
        }
        for i in 1..=ITEMS {
            db.table(stock)
                .insert(stock_key(w, i), &[rng.gen_range(10..=100), 0, 0, 0])
                .expect("stock insert");
        }
    }
    for i in 1..=ITEMS {
        db.table(item)
            .insert(i, &[rng.gen_range(100..=10_000), rng.gen_range(1..=10_000), rng.gen::<u32>() as i64])
            .expect("item insert");
    }

    (
        db,
        TpccTables {
            warehouse,
            district,
            customer,
            item,
            stock,
            orders,
            new_order,
            order_line,
            history,
        },
    )
}

/// Sum of a column over all live rows (test/invariant helper).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn column_sum(db: &Database, table: TableId, col: ColId) -> i64 {
    let t = db.table(table);
    let mut sum = 0i64;
    for r in 0..t.len() {
        let rid = ltpg_storage::RowId(r as u32);
        if t.key_of(rid).is_some() {
            sum = sum.wrapping_add(t.get(rid, col));
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_matches_cardinalities() {
        let (db, t) = build_database(2, 100, 1);
        assert_eq!(db.table(t.warehouse).live_rows(), 2);
        assert_eq!(db.table(t.district).live_rows(), 20);
        assert_eq!(db.table(t.customer).live_rows(), 2 * 10 * 3_000);
        assert_eq!(db.table(t.item).live_rows(), 100_000);
        assert_eq!(db.table(t.stock).live_rows(), 200_000);
        assert_eq!(db.table(t.orders).live_rows(), 0);
    }

    #[test]
    fn ytd_invariant_holds_at_population() {
        let (db, t) = build_database(3, 10, 2);
        let w_sum = column_sum(&db, t.warehouse, cols::W_YTD);
        let d_sum = column_sum(&db, t.district, cols::D_YTD);
        assert_eq!(w_sum, d_sum);
        assert_eq!(w_sum, 3 * INIT_W_YTD);
    }

    #[test]
    fn population_is_seed_deterministic() {
        let (a, _) = build_database(1, 10, 7);
        let (b, _) = build_database(1, 10, 7);
        let (c, _) = build_database(1, 10, 8);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_ne!(a.state_digest(), c.state_digest());
    }
}
