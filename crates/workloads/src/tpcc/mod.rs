//! TPC-C, as the paper runs it (§VI-A):
//!
//! * Only **NewOrder** and **Payment** are generated (≈90 % of the official
//!   mix; the only types all compared systems support).
//! * All attributes are integers (money in cents, zip codes as numbers).
//! * Hash indexes only; every key a transaction touches is computable
//!   before execution (the paper predefines range-query keys for the same
//!   reason).
//!
//! One deliberate modelling decision, shared by deterministic databases and
//! documented in DESIGN.md: **order ids derive from the transaction's TID**
//! (`Src::Tid`) instead of a read-modify-write on `D_NEXT_O_ID`, and
//! `D_NEXT_O_ID` is maintained as a commutative `+1` counter. A naive RMW
//! sequencer would serialize every NewOrder per district inside a batch —
//! the paper's measured NewOrder commit rates (63–88 %, Table VI, limited
//! by *stock* conflicts) show its implementation does not pay that price
//! either.

mod gen;
mod invariants;
mod keys;
mod schema;

pub use gen::{
    ItemDistribution, TpccConfig, TpccGenerator, PROC_DELIVERY, PROC_NEWORDER, PROC_ORDERSTATUS,
    PROC_PAYMENT, PROC_STOCKLEVEL,
};
pub use invariants::{check_invariants, InvariantError};
pub use keys::{cust_key, dist_key, order_key, orderline_key, stock_key, wh_key, DISTRICTS_PER_W};
pub use schema::{cols, TpccTables};
