//! Composite-key packing. The storage engine indexes single `i64` keys;
//! TPC-C's composite keys pack into disjoint bit ranges.

/// Districts per warehouse (TPC-C constant).
pub const DISTRICTS_PER_W: i64 = 10;
/// Customers per district (TPC-C constant).
pub const CUSTOMERS_PER_D: i64 = 3_000;
/// Items in the catalogue (TPC-C constant).
pub const ITEMS: i64 = 100_000;

/// Warehouse primary key (`w` is 1-based).
#[inline]
pub fn wh_key(w: i64) -> i64 {
    w
}

/// District key: `(w, d)` with `d` in `1..=10`.
#[inline]
pub fn dist_key(w: i64, d: i64) -> i64 {
    w * 16 + d
}

/// Customer key: `(w, d, c)` with `c` in `1..=3000`.
#[inline]
pub fn cust_key(w: i64, d: i64, c: i64) -> i64 {
    dist_key(w, d) * 4_096 + c
}

/// Stock key: `(w, i)` with `i` in `1..=100_000`.
#[inline]
pub fn stock_key(w: i64, i: i64) -> i64 {
    w * 131_072 + i
}

/// Order key: unique per (district, TID). TIDs fit comfortably in 40 bits
/// for any realistic run.
#[inline]
pub fn order_key(w: i64, d: i64, tid: i64) -> i64 {
    (dist_key(w, d) << 40) | tid
}

/// Base addend for deriving an order key from `Src::Tid` inside the IR.
#[inline]
pub fn order_key_base(w: i64, d: i64) -> i64 {
    dist_key(w, d) << 40
}

/// The district a packed order key belongs to.
#[inline]
pub fn order_key_district(key: i64) -> i64 {
    key >> 40
}

/// Order-line key: 16 lines per order at most (`ol` in `1..=15`).
#[inline]
pub fn orderline_key(order_key: i64, ol: i64) -> i64 {
    order_key * 16 + ol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_injective_across_the_configured_ranges() {
        let mut seen = std::collections::HashSet::new();
        for w in 1..=64 {
            assert!(seen.insert(("w", wh_key(w))));
            for d in 1..=DISTRICTS_PER_W {
                assert!(seen.insert(("d", dist_key(w, d))));
                for c in [1, 1_500, CUSTOMERS_PER_D] {
                    assert!(seen.insert(("c", cust_key(w, d, c))));
                }
            }
            for i in [1, 50_000, ITEMS] {
                assert!(seen.insert(("s", stock_key(w, i))));
            }
        }
    }

    #[test]
    fn order_keys_roundtrip_district_and_stay_positive() {
        let k = order_key(64, 10, (1u64 << 40) as i64 - 1);
        assert!(k > 0);
        assert_eq!(order_key_district(k), dist_key(64, 10));
        assert_eq!(order_key_base(3, 7) | 12345, order_key(3, 7, 12345));
        // Order-line keys keep fitting in i64.
        let ol = orderline_key(k, 15);
        assert!(ol > 0);
        assert_eq!(ol, k * 16 + 15);
    }
}
