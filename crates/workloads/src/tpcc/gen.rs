//! TPC-C transaction generation: parameter distributions per the spec
//! (NURand item/customer selection, 5–15 order lines, 1 % remote order
//! lines, 15 % remote payments) compiled to IR instances.

use ltpg_storage::Database;
use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, Txn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::keys::{
    cust_key, dist_key, order_key_base, stock_key, wh_key, CUSTOMERS_PER_D, DISTRICTS_PER_W, ITEMS,
};
use super::keys::orderline_key;
use super::schema::{cols, TpccTables};

/// Procedure id of NewOrder.
pub const PROC_NEWORDER: ProcId = ProcId(0);
/// Procedure id of Payment.
pub const PROC_PAYMENT: ProcId = ProcId(1);
/// Procedure id of Delivery (full mix only; needs ordered indexes).
pub const PROC_DELIVERY: ProcId = ProcId(2);
/// Procedure id of OrderStatus (full mix only).
pub const PROC_ORDERSTATUS: ProcId = ProcId(3);
/// Procedure id of StockLevel (full mix only; needs ordered STOCK).
pub const PROC_STOCKLEVEL: ProcId = ProcId(4);

/// How NewOrder picks items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItemDistribution {
    /// Uniform over the 100 000-item catalogue. **Default**: this is the
    /// only distribution consistent with the paper's measured NewOrder
    /// commit rates (63–88 %, Table VI) — under TPC-C's NURand the OR-bias
    /// concentrates picks on ~37 k items, multiplying stock collisions
    /// ~18× and collapsing NewOrder commits at large batches. See
    /// EXPERIMENTS.md for the calibration derivation.
    #[default]
    Uniform,
    /// TPC-C specification `NURand(8191, 1, 100000)`.
    NuRand,
}

/// Generator configuration. The paper's experiment axes are
/// `warehouses` ∈ {8, 16, 32, 64} and `neworder_pct` ∈ {0, 50, 100}.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (the paper's "database size" axis).
    pub warehouses: i64,
    /// Percent of NewOrder transactions; the rest are Payment.
    pub neworder_pct: u8,
    /// Item selection distribution.
    pub item_dist: ItemDistribution,
    /// Generate the full five-transaction mix (NewOrder 45 %, Payment
    /// 43 %, OrderStatus 4 %, Delivery 4 %, StockLevel 4 % — the official
    /// TPC-C proportions) instead of the two-transaction
    /// `neworder_pct`/Payment mix the paper benchmarks. Requires the
    /// ordered-index extension: only LTPG and the serial reference can run
    /// it (Delivery/OrderStatus/StockLevel are undeclarable).
    pub full_mix: bool,
    /// Fraction (percent) of order lines supplied by a remote warehouse.
    pub remote_ol_pct: u8,
    /// Fraction (percent) of payments by a customer of a remote warehouse.
    pub remote_payment_pct: u8,
    /// Spare rows for insert-target tables (size to total planned txns).
    pub insert_headroom: usize,
    /// RNG seed: population and parameter streams are derived from it.
    pub seed: u64,
    /// Warehouse-aligned partition count for sharded execution (1 = classic
    /// generator, RNG stream bit-identical to pre-knob builds). With
    /// `n > 1`, warehouses are grouped round-robin by `w % n` — matching a
    /// stride-based shard partitioner that derives the warehouse from every
    /// TPC-C composite key — and *remote* picks (NewOrder supply warehouses,
    /// Payment customer warehouses) stay inside the home warehouse's group
    /// unless the cross-shard roll fires. Payment's TID-keyed HISTORY insert
    /// is not warehouse-aligned and still spreads across shards under hash
    /// routing; partition-confined scaling experiments use YCSB.
    pub partitions: u32,
    /// Percentage (0–100) of *remote* picks that deliberately leave the home
    /// warehouse group. Only meaningful when `partitions > 1`; the overall
    /// cross-shard fraction is roughly `remote_*_pct × cross_shard_pct`.
    pub cross_shard_pct: u32,
}

impl TpccConfig {
    /// Paper-defaults for a given warehouse count and NewOrder percentage.
    pub fn new(warehouses: i64, neworder_pct: u8) -> Self {
        TpccConfig {
            warehouses,
            neworder_pct,
            item_dist: ItemDistribution::Uniform,
            full_mix: false,
            remote_ol_pct: 1,
            remote_payment_pct: 15,
            insert_headroom: 1 << 20,
            seed: 0xD5C0_1234,
            partitions: 1,
            cross_shard_pct: 0,
        }
    }

    /// Group warehouses into `partitions` round-robin classes and let
    /// `cross_shard_pct` percent of remote picks leave the home class (see
    /// [`TpccConfig::partitions`]).
    pub fn with_partitions(mut self, partitions: u32, cross_shard_pct: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        assert!(cross_shard_pct <= 100, "cross_shard_pct is a percentage");
        self.partitions = partitions;
        self.cross_shard_pct = cross_shard_pct;
        self
    }

    /// Override the item-selection distribution.
    pub fn with_item_dist(mut self, dist: ItemDistribution) -> Self {
        self.item_dist = dist;
        self
    }

    /// Enable the full five-transaction mix (see [`TpccConfig::full_mix`]).
    pub fn with_full_mix(mut self) -> Self {
        self.full_mix = true;
        self
    }

    /// Override the insert headroom (tests use small values).
    pub fn with_headroom(mut self, rows: usize) -> Self {
        self.insert_headroom = rows;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// TPC-C NURand(A, x, y) non-uniform distribution.
fn nurand<R: Rng + ?Sized>(rng: &mut R, a: i64, c: i64, x: i64, y: i64) -> i64 {
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % (y - x + 1)) + x
}

/// Deterministic TPC-C transaction generator.
#[derive(Debug)]
pub struct TpccGenerator {
    cfg: TpccConfig,
    tables: TpccTables,
    rng: StdRng,
    /// NURand run constants (per the spec, fixed per run).
    c_cust: i64,
    c_item: i64,
    /// Simulated wall-clock for O_ENTRY_D / H_DATE.
    clock: i64,
    /// Transactions emitted so far — approximates the current TID frontier
    /// for OrderStatus/StockLevel key guesses (missing keys are no-ops).
    emitted: i64,
}

impl TpccGenerator {
    /// Build the populated database and a generator over it.
    pub fn new(cfg: TpccConfig) -> (Database, TpccTables, TpccGenerator) {
        let (db, tables) = super::schema::build_database_with(
            cfg.warehouses,
            cfg.insert_headroom,
            cfg.seed,
            cfg.full_mix,
        );
        (db, tables, Self::from_parts(cfg, tables))
    }

    /// A generator over an already-built database (e.g. a
    /// [`Database::deep_clone`] shared across engines for fairness — the
    /// same seed yields the same transaction stream).
    pub fn from_parts(cfg: TpccConfig, tables: TpccTables) -> TpccGenerator {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6765_6e21);
        let c_cust = rng.gen_range(0..=1_023);
        let c_item = rng.gen_range(0..=8_191);
        TpccGenerator { cfg, tables, rng, c_cust, c_item, clock: 1_000_000, emitted: 0 }
    }

    /// The table ids this generator targets.
    pub fn tables(&self) -> TpccTables {
        self.tables
    }

    /// Generate `n` fresh transactions (TIDs unassigned; use
    /// [`ltpg_txn::Batch::assemble`]).
    pub fn gen_batch(&mut self, n: usize) -> Vec<Txn> {
        (0..n).map(|_| self.gen_txn()).collect()
    }

    /// Generate one transaction according to the configured mix.
    pub fn gen_txn(&mut self) -> Txn {
        self.clock += 1;
        self.emitted += 1;
        if self.cfg.full_mix {
            // Official TPC-C proportions: 45/43/4/4/4.
            return match self.rng.gen_range(0..100u32) {
                0..=44 => self.gen_neworder(),
                45..=87 => self.gen_payment(),
                88..=91 => self.gen_orderstatus(),
                92..=95 => self.gen_delivery(),
                _ => self.gen_stocklevel(),
            };
        }
        if self.rng.gen_range(0..100u32) < u32::from(self.cfg.neworder_pct) {
            self.gen_neworder()
        } else {
            self.gen_payment()
        }
    }

    fn pick_warehouse(&mut self) -> i64 {
        self.rng.gen_range(1..=self.cfg.warehouses)
    }

    /// Pick a remote (≠ `w`) warehouse. Unpartitioned, any other warehouse
    /// qualifies and the RNG draw matches pre-knob builds bit-for-bit. With
    /// `partitions > 1` the pick stays inside `w`'s round-robin group
    /// (`w % partitions`) unless the cross-shard roll fires; a group with no
    /// other member falls back to a cross-group pick so the remote fraction
    /// is preserved.
    fn pick_remote_warehouse(&mut self, w: i64) -> i64 {
        let p = i64::from(self.cfg.partitions);
        if p <= 1 {
            let mut sw = self.rng.gen_range(1..=self.cfg.warehouses - 1);
            if sw >= w {
                sw += 1;
            }
            return sw;
        }
        let cross = self.rng.gen_range(0..100u32) < self.cfg.cross_shard_pct;
        let rem = w.rem_euclid(p);
        let first = if rem == 0 { p } else { rem };
        let group = if first > self.cfg.warehouses {
            0
        } else {
            (self.cfg.warehouses - first) / p + 1
        };
        if !cross && group > 1 {
            let own = (w - first) / p;
            let mut idx = self.rng.gen_range(0..group - 1);
            if idx >= own {
                idx += 1;
            }
            return first + idx * p;
        }
        // Cross-group (or the home group has no other member): rejection-
        // sample a warehouse of a different residue class. Terminates since
        // `warehouses >= 2` inhabits at least two classes when `p >= 2`.
        loop {
            let sw = self.rng.gen_range(1..=self.cfg.warehouses);
            if sw.rem_euclid(p) != rem {
                return sw;
            }
        }
    }

    /// NewOrder: read warehouse/district/customer, derive a TID-unique
    /// order id, insert ORDERS + NEW_ORDER, then per order line read the
    /// item, RMW the stock row (non-commutative wraparound — the genuine
    /// OCC conflict surface), and insert the ORDER_LINE.
    fn gen_neworder(&mut self) -> Txn {
        let t = self.tables;
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=DISTRICTS_PER_W);
        let c = nurand(&mut self.rng, 1_023, self.c_cust, 1, CUSTOMERS_PER_D);
        let ol_cnt = self.rng.gen_range(5..=15i64);
        let entry_d = self.clock;

        // Registers: 0 W_TAX, 1 D_TAX, 2 C_DISCOUNT, 3 order key,
        // 4 orderline key base, 5.. per-line scratch (reused).
        let mut ops = Vec::with_capacity(8 + 9 * ol_cnt as usize);
        let mut params = vec![w, d, c, ol_cnt, entry_d];
        ops.push(IrOp::Read { table: t.warehouse, key: Src::Const(wh_key(w)), col: cols::W_TAX, out: 0 });
        ops.push(IrOp::Read { table: t.district, key: Src::Const(dist_key(w, d)), col: cols::D_TAX, out: 1 });
        // Deterministic sequencer: count the order; the id itself is
        // TID-derived (see module docs).
        ops.push(IrOp::Add {
            table: t.district,
            key: Src::Const(dist_key(w, d)),
            col: cols::D_NEXT_O_ID,
            delta: Src::Const(1),
        });
        ops.push(IrOp::Read {
            table: t.customer,
            key: Src::Const(cust_key(w, d, c)),
            col: cols::C_DISCOUNT,
            out: 2,
        });
        ops.push(IrOp::Compute {
            f: ComputeFn::Add,
            a: Src::Const(order_key_base(w, d)),
            b: Src::Tid,
            out: 3,
        });
        let mut all_local = 1i64;
        let mut lines = Vec::with_capacity(ol_cnt as usize);
        for _ in 0..ol_cnt {
            let i_id = match self.cfg.item_dist {
                ItemDistribution::Uniform => self.rng.gen_range(1..=ITEMS),
                ItemDistribution::NuRand => nurand(&mut self.rng, 8_191, self.c_item, 1, ITEMS),
            };
            let supply_w = if self.cfg.warehouses > 1
                && self.rng.gen_range(0..100u32) < u32::from(self.cfg.remote_ol_pct)
            {
                all_local = 0;
                self.pick_remote_warehouse(w)
            } else {
                w
            };
            let qty = self.rng.gen_range(1..=10i64);
            lines.push((i_id, supply_w, qty));
        }
        ops.push(IrOp::Insert {
            table: t.orders,
            key: Src::Reg(3),
            values: vec![
                Src::Const(cust_key(w, d, c)),
                Src::Const(entry_d),
                Src::Const(0),
                Src::Const(ol_cnt),
                Src::Const(all_local),
            ],
        });
        ops.push(IrOp::Insert { table: t.new_order, key: Src::Reg(3), values: vec![Src::Const(1)] });
        ops.push(IrOp::Compute { f: ComputeFn::Mul, a: Src::Reg(3), b: Src::Const(16), out: 4 });
        for (ol, (i_id, supply_w, qty)) in lines.iter().enumerate() {
            params.extend_from_slice(&[*i_id, *supply_w, *qty]);
            ops.push(IrOp::Read { table: t.item, key: Src::Const(*i_id), col: cols::I_PRICE, out: 5 });
            ops.push(IrOp::Read {
                table: t.stock,
                key: Src::Const(stock_key(*supply_w, *i_id)),
                col: cols::S_QUANTITY,
                out: 6,
            });
            ops.push(IrOp::Compute { f: ComputeFn::StockSub, a: Src::Reg(6), b: Src::Const(*qty), out: 7 });
            ops.push(IrOp::Update {
                table: t.stock,
                key: Src::Const(stock_key(*supply_w, *i_id)),
                col: cols::S_QUANTITY,
                val: Src::Reg(7),
            });
            ops.push(IrOp::Add {
                table: t.stock,
                key: Src::Const(stock_key(*supply_w, *i_id)),
                col: cols::S_YTD,
                delta: Src::Const(*qty),
            });
            ops.push(IrOp::Add {
                table: t.stock,
                key: Src::Const(stock_key(*supply_w, *i_id)),
                col: cols::S_ORDER_CNT,
                delta: Src::Const(1),
            });
            if *supply_w != w {
                ops.push(IrOp::Add {
                    table: t.stock,
                    key: Src::Const(stock_key(*supply_w, *i_id)),
                    col: cols::S_REMOTE_CNT,
                    delta: Src::Const(1),
                });
            }
            ops.push(IrOp::Compute { f: ComputeFn::Mul, a: Src::Reg(5), b: Src::Const(*qty), out: 8 });
            ops.push(IrOp::Compute {
                f: ComputeFn::Add,
                a: Src::Reg(4),
                b: Src::Const(ol as i64 + 1),
                out: 9,
            });
            ops.push(IrOp::Insert {
                table: t.order_line,
                key: Src::Reg(9),
                values: vec![
                    Src::Const(*i_id),
                    Src::Const(*supply_w),
                    Src::Const(*qty),
                    Src::Reg(8),
                    Src::Const(0),
                ],
            });
        }
        Txn::new(PROC_NEWORDER, params, ops)
    }

    /// Payment: read warehouse/district/customer identity columns, add the
    /// amount to W_YTD (the hotspot), D_YTD and the customer's balance
    /// columns, and insert a HISTORY row keyed by TID.
    fn gen_payment(&mut self) -> Txn {
        let t = self.tables;
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=DISTRICTS_PER_W);
        // 15 % of payments come from a customer of a remote warehouse.
        let (cw, cd) = if self.cfg.warehouses > 1
            && self.rng.gen_range(0..100u32) < u32::from(self.cfg.remote_payment_pct)
        {
            let rw = self.pick_remote_warehouse(w);
            (rw, self.rng.gen_range(1..=DISTRICTS_PER_W))
        } else {
            (w, d)
        };
        let c = nurand(&mut self.rng, 1_023, self.c_cust, 1, CUSTOMERS_PER_D);
        let amount = self.rng.gen_range(100..=500_000i64);
        let date = self.clock;
        let params = vec![w, d, cw, cd, c, amount, date];
        let ops = vec![
            IrOp::Read { table: t.warehouse, key: Src::Const(wh_key(w)), col: cols::W_ZIP, out: 0 },
            IrOp::Add { table: t.warehouse, key: Src::Const(wh_key(w)), col: cols::W_YTD, delta: Src::Const(amount) },
            IrOp::Read { table: t.district, key: Src::Const(dist_key(w, d)), col: cols::D_ZIP, out: 1 },
            IrOp::Add { table: t.district, key: Src::Const(dist_key(w, d)), col: cols::D_YTD, delta: Src::Const(amount) },
            IrOp::Read { table: t.customer, key: Src::Const(cust_key(cw, cd, c)), col: cols::C_CREDIT, out: 2 },
            IrOp::Add { table: t.customer, key: Src::Const(cust_key(cw, cd, c)), col: cols::C_BALANCE, delta: Src::Const(-amount) },
            IrOp::Add { table: t.customer, key: Src::Const(cust_key(cw, cd, c)), col: cols::C_YTD_PAYMENT, delta: Src::Const(amount) },
            IrOp::Add { table: t.customer, key: Src::Const(cust_key(cw, cd, c)), col: cols::C_PAYMENT_CNT, delta: Src::Const(1) },
            IrOp::Insert {
                table: t.history,
                key: Src::Tid,
                values: vec![
                    Src::Const(cust_key(cw, cd, c)),
                    Src::Const(d),
                    Src::Const(w),
                    Src::Const(amount),
                    Src::Const(date),
                ],
            },
        ];
        Txn::new(PROC_PAYMENT, params, ops)
    }
    /// Delivery (full mix): for each of the ten districts, find the oldest
    /// undelivered order (range-min over the NEW_ORDER ordered index),
    /// delete its NEW_ORDER row, stamp the carrier, total its order lines
    /// (ordered range sum) and credit the customer. Districts with no
    /// pending order fall through via the missing-key no-op semantics
    /// (`RangeMinKey` yields 0, and every downstream op on key 0 is a
    /// no-op).
    fn gen_delivery(&mut self) -> Txn {
        let t = self.tables;
        let w = self.pick_warehouse();
        let carrier = self.rng.gen_range(1..=10i64);
        let params = vec![w, carrier];
        // Registers: 10 order key, 11 customer key, 12/13 OL bounds, 14 sum.
        let mut ops = Vec::with_capacity(9 * DISTRICTS_PER_W as usize);
        for d in 1..=DISTRICTS_PER_W {
            let base = order_key_base(w, d);
            ops.push(IrOp::RangeMinKey {
                table: t.new_order,
                lo: Src::Const(base),
                hi: Src::Const(base + (1 << 40)),
                out: 10,
            });
            ops.push(IrOp::Delete { table: t.new_order, key: Src::Reg(10) });
            ops.push(IrOp::Update {
                table: t.orders,
                key: Src::Reg(10),
                col: cols::O_CARRIER_ID,
                val: Src::Const(carrier),
            });
            ops.push(IrOp::Read { table: t.orders, key: Src::Reg(10), col: cols::O_C_ID, out: 11 });
            ops.push(IrOp::Compute { f: ComputeFn::Mul, a: Src::Reg(10), b: Src::Const(16), out: 12 });
            ops.push(IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(12), b: Src::Const(16), out: 13 });
            ops.push(IrOp::RangeSum {
                table: t.order_line,
                lo: Src::Reg(12),
                hi: Src::Reg(13),
                col: cols::OL_AMOUNT,
                out: 14,
            });
            ops.push(IrOp::Add {
                table: t.customer,
                key: Src::Reg(11),
                col: cols::C_BALANCE,
                delta: Src::Reg(14),
            });
            ops.push(IrOp::Add {
                table: t.customer,
                key: Src::Reg(11),
                col: cols::C_DELIVERY_CNT,
                delta: Src::Const(1),
            });
        }
        Txn::new(PROC_DELIVERY, params, ops)
    }

    /// OrderStatus (full mix, read-only): customer balance/payment count
    /// plus the line total of a recent order. The order id is a predefined
    /// guess near the TID frontier (the paper predefines range-query keys
    /// for the same reason); a missed guess reads nothing.
    fn gen_orderstatus(&mut self) -> Txn {
        let t = self.tables;
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=DISTRICTS_PER_W);
        let c = nurand(&mut self.rng, 1_023, self.c_cust, 1, CUSTOMERS_PER_D);
        let guess_tid = self.rng.gen_range(1..=self.emitted.max(1));
        let okey = order_key_base(w, d) | guess_tid;
        let params = vec![w, d, c, guess_tid];
        let ops = vec![
            IrOp::Read { table: t.customer, key: Src::Const(cust_key(w, d, c)), col: cols::C_BALANCE, out: 0 },
            IrOp::Read { table: t.customer, key: Src::Const(cust_key(w, d, c)), col: cols::C_PAYMENT_CNT, out: 1 },
            IrOp::Read { table: t.orders, key: Src::Const(okey), col: cols::O_OL_CNT, out: 2 },
            IrOp::RangeSum {
                table: t.order_line,
                lo: Src::Const(orderline_key(okey, 0)),
                hi: Src::Const(orderline_key(okey, 0) + 16),
                col: cols::OL_AMOUNT,
                out: 3,
            },
        ];
        Txn::new(PROC_ORDERSTATUS, params, ops)
    }

    /// StockLevel (full mix, read-only): sum the quantities of the
    /// district's recent order lines and count low stock over a sampled
    /// item window (predefined key bounds, per the paper's hash-index
    /// constraint; the ordered STOCK index makes the count a true range
    /// scan).
    fn gen_stocklevel(&mut self) -> Txn {
        let t = self.tables;
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(1..=DISTRICTS_PER_W);
        let threshold = self.rng.gen_range(10..=20i64);
        let recent_lo = (self.emitted - 200).max(1);
        let okey_lo = order_key_base(w, d) | recent_lo;
        let okey_hi = order_key_base(w, d) | (self.emitted + 1).max(2);
        let i0 = self.rng.gen_range(1..=ITEMS - 200);
        let params = vec![w, d, threshold];
        let ops = vec![
            IrOp::RangeSum {
                table: t.order_line,
                lo: Src::Const(orderline_key(okey_lo, 0)),
                hi: Src::Const(orderline_key(okey_hi, 0)),
                col: cols::OL_QUANTITY,
                out: 0,
            },
            IrOp::RangeCountBelow {
                table: t.stock,
                lo: Src::Const(stock_key(w, i0)),
                hi: Src::Const(stock_key(w, i0 + 200)),
                col: cols::S_QUANTITY,
                threshold: Src::Const(threshold),
                out: 1,
            },
        ];
        Txn::new(PROC_STOCKLEVEL, params, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_txn::declared::declared_accesses;
    use ltpg_txn::{execute_serial, Batch, Tid, TidGen};

    fn generator(pct: u8) -> (Database, TpccTables, TpccGenerator) {
        TpccGenerator::new(TpccConfig::new(2, pct).with_headroom(4_096))
    }

    #[test]
    fn all_generated_txns_validate_and_declare() {
        let (_db, _t, mut g) = generator(50);
        for txn in g.gen_batch(200) {
            txn.validate().expect("IR must validate");
            let mut t = txn.clone();
            t.tid = Tid(99);
            assert!(declared_accesses(&t).is_some(), "TPC-C must be statically declarable");
        }
    }

    #[test]
    fn mix_percentage_is_respected() {
        let (_db, _t, mut g) = generator(50);
        let batch = g.gen_batch(2_000);
        let neworders = batch.iter().filter(|t| t.proc == PROC_NEWORDER).count();
        assert!((800..1_200).contains(&neworders), "neworder count {neworders}");
        let (_db, _t, mut g100) = generator(100);
        assert!(g100.gen_batch(100).iter().all(|t| t.proc == PROC_NEWORDER));
        let (_db, _t, mut g0) = generator(0);
        assert!(g0.gen_batch(100).iter().all(|t| t.proc == PROC_PAYMENT));
    }

    #[test]
    fn serial_execution_of_a_batch_succeeds_and_grows_tables() {
        let (db, t, mut g) = generator(50);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], g.gen_batch(100), &mut gen);
        let mut orders = 0;
        for txn in &batch.txns {
            execute_serial(&db, txn).expect("serial TPC-C txn");
            if txn.proc == PROC_NEWORDER {
                orders += 1;
            }
        }
        assert_eq!(db.table(t.orders).live_rows(), orders);
        assert_eq!(db.table(t.new_order).live_rows(), orders);
        assert_eq!(db.table(t.history).live_rows(), 100 - orders);
        assert!(db.table(t.order_line).live_rows() >= orders * 5);
    }

    #[test]
    fn neworder_order_keys_are_unique_per_tid() {
        let (db, t, mut g) = generator(100);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], g.gen_batch(50), &mut gen);
        for txn in &batch.txns {
            execute_serial(&db, txn).unwrap();
        }
        // 50 orders, all distinct keys (insert would have failed otherwise).
        assert_eq!(db.table(t.orders).live_rows(), 50);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (_d1, _t1, mut g1) = TpccGenerator::new(TpccConfig::new(1, 50).with_headroom(64).with_seed(5));
        let (_d2, _t2, mut g2) = TpccGenerator::new(TpccConfig::new(1, 50).with_headroom(64).with_seed(5));
        assert_eq!(g1.gen_batch(50), g2.gen_batch(50));
    }

    #[test]
    fn partitions_one_preserves_classic_stream() {
        let mk = |cfg: TpccConfig| {
            let (_d, _t, mut g) = TpccGenerator::new(cfg);
            g.gen_batch(300)
        };
        let base = TpccConfig::new(4, 50).with_headroom(4_096);
        assert_eq!(mk(base.clone()), mk(base.with_partitions(1, 0)));
    }

    #[test]
    fn partitioned_remote_picks_stay_in_warehouse_group() {
        // 8 warehouses, 4 groups (w % 4), remote payments only, 0% cross.
        let cfg = TpccConfig::new(8, 0).with_headroom(4_096).with_partitions(4, 0);
        let (_d, _t, mut g) = TpccGenerator::new(cfg);
        let batch = g.gen_batch(2_000);
        let mut remote = 0;
        for t in &batch {
            // params: [w, d, cw, cd, c, amount, date]
            let (w, cw) = (t.params[0], t.params[2]);
            if w != cw {
                remote += 1;
                assert_eq!(w % 4, cw % 4, "remote pick left the warehouse group");
            }
        }
        assert!(remote > 100, "remote payments should still occur ({remote})");
    }

    #[test]
    fn cross_shard_pct_sends_remote_picks_out_of_group() {
        let cfg = TpccConfig::new(8, 0).with_headroom(4_096).with_partitions(4, 100);
        let (_d, _t, mut g) = TpccGenerator::new(cfg);
        let batch = g.gen_batch(2_000);
        let mut remote = 0;
        for t in &batch {
            let (w, cw) = (t.params[0], t.params[2]);
            if w != cw {
                remote += 1;
                assert_ne!(w % 4, cw % 4, "100% cross pick stayed in group");
            }
        }
        assert!(remote > 100, "remote payments should still occur ({remote})");
    }

    #[test]
    fn payment_remote_fraction_roughly_matches() {
        let (_db, _t, mut g) = generator(0);
        let batch = g.gen_batch(3_000);
        let remote = batch
            .iter()
            .filter(|t| {
                // params: [w, d, cw, cd, c, amount, date]
                t.params[0] != t.params[2]
            })
            .count();
        let frac = remote as f64 / 3_000.0;
        assert!((frac - 0.15).abs() < 0.03, "remote payment fraction {frac}");
    }
}
