//! YCSB, as the paper runs it (§VI-E): a single `usertable`, ten operations
//! per transaction, Zipfian key selection with α = 2.5 (high contention),
//! data cardinality 10⁴–10⁷, and the five core workloads:
//!
//! | Workload | Mix |
//! |---|---|
//! | A (update heavy) | 50 % read / 50 % update |
//! | B (read heavy)   | 95 % read / 5 % update |
//! | C (read only)    | 100 % read |
//! | D (read latest)  | 95 % read-latest / 5 % insert |
//! | E (short ranges) | 95 % scan / 5 % insert |
//!
//! Scans are emulated over repeated hash lookups ([`ltpg_txn::IrOp::ScanSum`])
//! — the same slow path the paper observes for workload E on its
//! hash-indexed storage.

use ltpg_storage::{ColId, Database, TableBuilder, TableId};
use ltpg_txn::{IrOp, ProcId, Src, Txn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Number of value fields per row.
pub const FIELDS: u16 = 4;

/// First procedure id used by YCSB transactions (A=20, B=21, ... E=24).
pub const PROC_YCSB_BASE: u16 = 20;

/// The five core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50 % read / 50 % update.
    A,
    /// 95 % read / 5 % update.
    B,
    /// Read only.
    C,
    /// 95 % read-latest / 5 % insert.
    D,
    /// 95 % short scan / 5 % insert.
    E,
}

impl YcsbWorkload {
    /// All five workloads, in paper order.
    pub const ALL: [YcsbWorkload; 5] =
        [YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::C, YcsbWorkload::D, YcsbWorkload::E];

    /// Display letter.
    pub fn letter(self) -> char {
        match self {
            YcsbWorkload::A => 'A',
            YcsbWorkload::B => 'B',
            YcsbWorkload::C => 'C',
            YcsbWorkload::D => 'D',
            YcsbWorkload::E => 'E',
        }
    }

    /// The [`ProcId`] instances of this workload carry.
    pub fn proc(self) -> ProcId {
        ProcId(
            PROC_YCSB_BASE
                + match self {
                    YcsbWorkload::A => 0,
                    YcsbWorkload::B => 1,
                    YcsbWorkload::C => 2,
                    YcsbWorkload::D => 3,
                    YcsbWorkload::E => 4,
                },
        )
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of preloaded records (the paper sweeps 10⁴–10⁷).
    pub records: u64,
    /// Operations per transaction (the paper fixes 10).
    pub ops_per_txn: usize,
    /// Zipfian exponent (the paper uses 2.5 for high contention).
    pub zipf_alpha: f64,
    /// Which workload mix to generate.
    pub workload: YcsbWorkload,
    /// Maximum emulated scan length for workload E.
    pub scan_len_max: u16,
    /// Workload E scans through a B+tree ordered index (`RangeSum`) instead
    /// of emulated point lookups (`ScanSum`) — the paper's future-work
    /// extension. Builds `usertable` with an ordered index.
    pub ordered_scans: bool,
    /// Spare rows for workloads D/E inserts.
    pub insert_headroom: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of contiguous key partitions the keyspace is carved into for
    /// sharded execution (1 = the classic unpartitioned generator; the RNG
    /// stream is bit-identical to pre-knob builds in that case). With `n > 1`
    /// each transaction picks a home partition uniformly and draws its
    /// Zipfian keys inside it, so a [Range-partitioned] shard layout makes
    /// the transaction single-shard by construction.
    ///
    /// [Range-partitioned]: YcsbConfig::partition_bounds
    pub partitions: u32,
    /// Percentage (0–100) of transactions that deliberately straddle two
    /// partitions: odd-numbered operation slots draw their keys from a
    /// second, distinct partition. Only meaningful when `partitions > 1`.
    pub cross_shard_pct: u32,
}

impl YcsbConfig {
    /// Paper defaults for a workload and cardinality.
    pub fn new(workload: YcsbWorkload, records: u64) -> Self {
        YcsbConfig {
            records,
            ops_per_txn: 10,
            zipf_alpha: 2.5,
            workload,
            scan_len_max: 16,
            ordered_scans: false,
            insert_headroom: 1 << 18,
            seed: 0x7963_7362,
            partitions: 1,
            cross_shard_pct: 0,
        }
    }

    /// Override the insert headroom.
    pub fn with_headroom(mut self, rows: usize) -> Self {
        self.insert_headroom = rows;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the Zipf exponent.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Enable true ordered scans for workload E (see
    /// [`YcsbConfig::ordered_scans`]).
    pub fn with_ordered_scans(mut self) -> Self {
        self.ordered_scans = true;
        self
    }

    /// Carve the keyspace into `partitions` contiguous ranges and make
    /// `cross_shard_pct` percent of transactions straddle two of them (see
    /// [`YcsbConfig::partitions`]).
    pub fn with_partitions(mut self, partitions: u32, cross_shard_pct: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        assert!(cross_shard_pct <= 100, "cross_shard_pct is a percentage");
        self.partitions = partitions;
        self.cross_shard_pct = cross_shard_pct;
        self
    }

    /// Keys per partition (`records / partitions`, floor division; leftover
    /// tail keys belong to the last partition but are never drawn).
    pub fn partition_size(&self) -> u64 {
        self.records / u64::from(self.partitions.max(1))
    }

    /// Range-partitioner split points: partition `i` covers keys
    /// `(i·size, i·size + size]`. Feed these to a range-based shard
    /// partitioner so each home partition maps onto exactly one shard.
    pub fn partition_bounds(&self) -> Vec<i64> {
        let size = self.partition_size() as i64;
        (1..i64::from(self.partitions.max(1))).map(|j| j * size + 1).collect()
    }
}

/// Deterministic YCSB transaction generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    table: TableId,
    rng: StdRng,
    zipf: Zipf,
    /// Zipfian over one partition's key range (`partitions > 1` only).
    part_zipf: Option<Zipf>,
    /// Key offset of the partition the current operation draws from.
    cur_base: i64,
    /// Next key for workload D/E inserts.
    next_insert_key: i64,
}

impl YcsbGenerator {
    /// Build the populated `usertable` and a generator over it.
    pub fn new(cfg: YcsbConfig) -> (Database, TableId, YcsbGenerator) {
        assert!(cfg.records >= 1, "need at least one record");
        assert!(cfg.ops_per_txn >= 1 && cfg.ops_per_txn <= 200, "unreasonable ops_per_txn");
        let mut db = Database::new();
        let cap = cfg.records as usize + cfg.insert_headroom;
        let schema = TableBuilder::new("usertable")
            .columns(["FIELD0", "FIELD1", "FIELD2", "FIELD3"])
            .capacity(cap)
            .build();
        let table = if cfg.ordered_scans {
            db.add_built_table(ltpg_storage::Table::new(schema).with_ordered())
        } else {
            db.add_table(schema)
        };
        let mut load_rng = StdRng::seed_from_u64(cfg.seed ^ 0x6c6f_6164);
        let t = db.table(table);
        for k in 1..=cfg.records as i64 {
            t.insert(k, &[load_rng.gen(), load_rng.gen(), load_rng.gen(), load_rng.gen()])
                .expect("usertable insert");
        }
        let gen = Self::from_parts(cfg, table);
        (db, table, gen)
    }

    /// A generator over an already-built `usertable` (for sharing one
    /// populated database across engines via deep clones).
    pub fn from_parts(cfg: YcsbConfig, table: TableId) -> YcsbGenerator {
        let zipf = Zipf::new(cfg.records, cfg.zipf_alpha);
        let part_zipf = if cfg.partitions > 1 {
            assert!(
                cfg.partition_size() >= 1,
                "records must cover at least one key per partition"
            );
            Some(Zipf::new(cfg.partition_size(), cfg.zipf_alpha))
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x6f70_7321);
        let next_insert_key = cfg.records as i64 + 1;
        YcsbGenerator { cfg, table, rng, zipf, part_zipf, cur_base: 0, next_insert_key }
    }

    /// The `usertable` id.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Generate `n` fresh transactions.
    pub fn gen_batch(&mut self, n: usize) -> Vec<Txn> {
        (0..n).map(|_| self.gen_txn()).collect()
    }

    fn zipf_key(&mut self) -> i64 {
        match &self.part_zipf {
            Some(pz) => self.cur_base + pz.sample_scrambled(&mut self.rng) as i64,
            None => self.zipf.sample_scrambled(&mut self.rng) as i64,
        }
    }

    /// Workload D's "latest" distribution: recency-skewed key below the
    /// current insert frontier.
    fn latest_key(&mut self) -> i64 {
        let back = self.zipf.sample(&mut self.rng) as i64 - 1;
        (self.next_insert_key - 1 - back).max(1)
    }

    fn rand_field(&mut self) -> ColId {
        ColId(self.rng.gen_range(0..FIELDS))
    }

    /// Pick the current transaction's home partition base and, if the
    /// cross-shard roll fires, a second distinct partition base for odd
    /// operation slots. Draws nothing from the RNG when unpartitioned, so
    /// `partitions <= 1` preserves the classic key stream bit-for-bit.
    fn pick_txn_partitions(&mut self) -> (i64, i64, bool) {
        if self.cfg.partitions <= 1 {
            return (0, 0, false);
        }
        let p = i64::from(self.cfg.partitions);
        let size = self.cfg.partition_size() as i64;
        let home = self.rng.gen_range(0..p);
        let cross = self.rng.gen_range(0..100u32) < self.cfg.cross_shard_pct;
        let base = home * size;
        let alt = if cross {
            let mut o = self.rng.gen_range(0..p - 1);
            if o >= home {
                o += 1;
            }
            o * size
        } else {
            base
        };
        (base, alt, cross)
    }

    /// Generate one transaction of `cfg.ops_per_txn` operations.
    ///
    /// Workload D's "latest" reads and D/E inserts are *not* partition
    /// confined: inserts land above the preloaded keyspace (owned by the
    /// last range partition) and additionally touch the table's membership
    /// partition, so they are inherently multi-shard under range sharding.
    /// Partition-confined scaling experiments should use workloads A–C.
    pub fn gen_txn(&mut self) -> Txn {
        let (home_base, alt_base, cross) = self.pick_txn_partitions();
        let mut ops = Vec::with_capacity(self.cfg.ops_per_txn);
        for slot in 0..self.cfg.ops_per_txn {
            self.cur_base = if cross && slot % 2 == 1 { alt_base } else { home_base };
            let out = (slot % 128) as u8;
            let roll = self.rng.gen_range(0..100u32);
            let op = match self.cfg.workload {
                YcsbWorkload::A if roll < 50 => self.read_op(out),
                YcsbWorkload::A => self.update_op(),
                YcsbWorkload::B if roll < 95 => self.read_op(out),
                YcsbWorkload::B => self.update_op(),
                YcsbWorkload::C => self.read_op(out),
                YcsbWorkload::D if roll < 95 => {
                    let k = self.latest_key();
                    let col = self.rand_field();
                    IrOp::Read { table: self.table, key: Src::Const(k), col, out }
                }
                YcsbWorkload::D => self.insert_op(),
                YcsbWorkload::E if roll < 95 => {
                    let start = self.zipf_key();
                    let count = self.rng.gen_range(1..=self.cfg.scan_len_max);
                    let col = self.rand_field();
                    if self.cfg.ordered_scans {
                        IrOp::RangeSum {
                            table: self.table,
                            lo: Src::Const(start),
                            hi: Src::Const(start + i64::from(count)),
                            col,
                            out,
                        }
                    } else {
                        IrOp::ScanSum { table: self.table, start: Src::Const(start), count, col, out }
                    }
                }
                YcsbWorkload::E => self.insert_op(),
            };
            ops.push(op);
        }
        Txn::new(self.cfg.workload.proc(), vec![self.cfg.records as i64], ops)
    }

    fn read_op(&mut self, out: u8) -> IrOp {
        let k = self.zipf_key();
        let col = self.rand_field();
        IrOp::Read { table: self.table, key: Src::Const(k), col, out }
    }

    fn update_op(&mut self) -> IrOp {
        let k = self.zipf_key();
        let col = self.rand_field();
        IrOp::Update { table: self.table, key: Src::Const(k), col, val: Src::Const(self.rng.gen()) }
    }

    fn insert_op(&mut self) -> IrOp {
        let k = self.next_insert_key;
        self.next_insert_key += 1;
        IrOp::Insert {
            table: self.table,
            key: Src::Const(k),
            values: (0..FIELDS).map(|_| Src::Const(self.rng.gen())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_txn::{execute_serial, Batch, OpKind, TidGen};

    fn config(w: YcsbWorkload) -> YcsbConfig {
        YcsbConfig::new(w, 1_000).with_headroom(4_096)
    }

    #[test]
    fn workload_c_is_read_only() {
        let (_db, _t, mut g) = YcsbGenerator::new(config(YcsbWorkload::C));
        for txn in g.gen_batch(50) {
            assert!(txn.ops.iter().all(|o| o.kind() == OpKind::Read));
            assert_eq!(txn.ops.len(), 10);
        }
    }

    #[test]
    fn workload_a_mix_is_roughly_half_updates() {
        let (_db, _t, mut g) = YcsbGenerator::new(config(YcsbWorkload::A));
        let batch = g.gen_batch(300);
        let (mut reads, mut updates) = (0usize, 0usize);
        for txn in &batch {
            for op in &txn.ops {
                match op.kind() {
                    OpKind::Read => reads += 1,
                    OpKind::Update => updates += 1,
                    k => panic!("unexpected op kind {k:?} in workload A"),
                }
            }
        }
        let frac = updates as f64 / (reads + updates) as f64;
        assert!((frac - 0.5).abs() < 0.05, "update fraction {frac}");
    }

    #[test]
    fn workload_e_scans_and_inserts() {
        let (_db, _t, mut g) = YcsbGenerator::new(config(YcsbWorkload::E));
        let batch = g.gen_batch(200);
        let mut kinds = std::collections::HashMap::new();
        for txn in &batch {
            for op in &txn.ops {
                *kinds.entry(op.kind()).or_insert(0usize) += 1;
            }
        }
        assert!(kinds[&OpKind::Scan] > kinds[&OpKind::Insert]);
        assert!(kinds.contains_key(&OpKind::Insert));
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn inserted_keys_are_fresh_and_serial_execution_works() {
        let (db, t, mut g) = YcsbGenerator::new(config(YcsbWorkload::D));
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], g.gen_batch(100), &mut gen);
        for txn in &batch.txns {
            execute_serial(&db, txn).expect("YCSB-D txn must not user-abort");
        }
        assert!(db.table(t).live_rows() > 1_000);
    }

    #[test]
    fn zipfian_keys_hit_hotset() {
        let (_db, _t, mut g) = YcsbGenerator::new(config(YcsbWorkload::A));
        let batch = g.gen_batch(500);
        let mut counts = std::collections::HashMap::<i64, usize>::new();
        for txn in &batch {
            for op in &txn.ops {
                if let IrOp::Read { key: Src::Const(k), .. } | IrOp::Update { key: Src::Const(k), .. } = op
                {
                    *counts.entry(*k).or_default() += 1;
                }
            }
        }
        let total: usize = counts.values().sum();
        let max = counts.values().max().copied().unwrap();
        // α = 2.5 concentrates ~74 % of accesses on one key.
        assert!(max as f64 / total as f64 > 0.6, "hottest key fraction {}", max as f64 / total as f64);
    }

    fn touched_partitions(txn: &Txn, size: i64) -> std::collections::BTreeSet<i64> {
        txn.ops
            .iter()
            .filter_map(|op| match op {
                IrOp::Read { key: Src::Const(k), .. }
                | IrOp::Update { key: Src::Const(k), .. } => Some((k - 1) / size),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn partitions_one_preserves_classic_stream() {
        let mk = |cfg: YcsbConfig| {
            let (_d, _t, mut g) = YcsbGenerator::new(cfg);
            g.gen_batch(40)
        };
        assert_eq!(mk(config(YcsbWorkload::A)), mk(config(YcsbWorkload::A).with_partitions(1, 0)));
    }

    #[test]
    fn partitioned_keys_stay_in_home_partition() {
        let cfg = config(YcsbWorkload::A).with_partitions(4, 0);
        let size = cfg.partition_size() as i64;
        assert_eq!(cfg.partition_bounds(), vec![size + 1, 2 * size + 1, 3 * size + 1]);
        let (_d, _t, mut g) = YcsbGenerator::new(cfg);
        let mut seen = std::collections::BTreeSet::new();
        for txn in g.gen_batch(200) {
            let parts = touched_partitions(&txn, size);
            assert_eq!(parts.len(), 1, "0% cross-shard txn touched {parts:?}");
            seen.extend(parts);
        }
        assert_eq!(seen.len(), 4, "all partitions should be drawn as homes");
    }

    #[test]
    fn cross_shard_fraction_tracks_knob() {
        let cfg = config(YcsbWorkload::A).with_partitions(4, 50);
        let size = cfg.partition_size() as i64;
        let (_d, _t, mut g) = YcsbGenerator::new(cfg);
        let batch = g.gen_batch(400);
        let cross =
            batch.iter().filter(|t| touched_partitions(t, size).len() == 2).count();
        let frac = cross as f64 / batch.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "cross-shard fraction {frac}");
    }

    #[test]
    fn generation_deterministic_per_seed() {
        let mk = |seed| {
            let (_d, _t, mut g) =
                YcsbGenerator::new(config(YcsbWorkload::B).with_seed(seed));
            g.gen_batch(30)
        };
        assert_eq!(mk(4), mk(4));
        assert_ne!(mk(4), mk(5));
    }
}
