#![warn(missing_docs)]

//! # ltpg-workloads — TPC-C and YCSB for the LTPG reproduction
//!
//! Workload generators matching the paper's experimental setup (§VI-A):
//!
//! * **TPC-C** ([`tpcc`]) — NewOrder and Payment only (≈90 % of the full
//!   mix, and the only transaction types every compared system supports),
//!   all attributes integer-typed, hash indexes only, range-query keys
//!   predefined. The NewOrder/Payment percentage and warehouse count are
//!   the two axes of the paper's Tables II and III.
//! * **YCSB** ([`ycsb`]) — workloads A–E over a single `usertable`, ten
//!   operations per transaction, Zipfian key selection with α = 2.5 (the
//!   paper's high-contention setting), cardinality 10⁴–10⁷ (Fig. 7).
//!
//! Both generators are deterministic given a seed, produce [`ltpg_txn::Txn`]
//! instances in the shared IR, and size their tables with headroom for the
//! inserts the batches will perform (device buffers are preallocated, as on
//! a real GPU).

pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use tpcc::{TpccConfig, TpccGenerator, TpccTables};
pub use ycsb::{YcsbConfig, YcsbGenerator, YcsbWorkload};
pub use zipf::Zipf;
