//! Zipfian sampling over `1..=n`.
//!
//! The paper's YCSB runs use a Zipfian distribution with α = 2.5 — far
//! steeper than the θ < 1 regime YCSB's stock generator (Gray's algorithm)
//! covers. We therefore implement both:
//!
//! * α > 1: Devroye's rejection method for the (unbounded) Zipf law,
//!   truncated to `n` by resampling — the tail mass beyond any realistic
//!   `n` is negligible at these exponents, so acceptance is high.
//! * α ≤ 1: Gray et al.'s method with precomputed `ζ(n, α)` (the classic
//!   YCSB generator).
//!
//! `sample_scrambled` applies YCSB's "scrambled zipfian" trick: ranks are
//! hashed onto the keyspace so the hot keys are spread uniformly while each
//! rank keeps hitting the *same* key (contention is preserved).

use rand::Rng;

/// A Zipfian sampler over ranks `1..=n` with exponent `alpha`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// Devroye constant `b = 2^(alpha-1)` (alpha > 1 path).
    b: f64,
    /// Smallest proposal `u` that still maps into `[1, n]` (alpha > 1
    /// path): `u >= (n+1)^-(alpha-1)` ⇔ `floor(u^(-1/(alpha-1))) <= n`.
    /// Drawing `u` from `[u_min, 1)` conditions Devroye's envelope on the
    /// truncation event up front, instead of rejecting out-of-domain
    /// proposals — which for `alpha` just above 1 with small `n` rejected
    /// almost every draw (an unbounded hot loop).
    u_min: f64,
    /// Gray-method state (alpha ≤ 1 path).
    gray: Option<Gray>,
}

#[derive(Debug, Clone)]
struct Gray {
    zetan: f64,
    theta: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipf {
    /// Create a sampler. `n ≥ 1`; `alpha ≥ 0` (`alpha = 0` is uniform).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "zipf over empty domain");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid zipf exponent");
        let gray = if alpha <= 1.0 {
            let zetan = zeta(n, alpha);
            let zeta2 = zeta(2.min(n), alpha);
            let eta = if n > 1 {
                (1.0 - (2.0 / n as f64).powf(1.0 - alpha)) / (1.0 - zeta2 / zetan)
            } else {
                1.0
            };
            Some(Gray { zetan, theta: alpha, eta, zeta2 })
        } else {
            None
        };
        let u_min = if alpha > 1.0 {
            // Clamp away from 1.0 so the proposal interval never collapses
            // (for huge n the value underflows toward 0, which is fine).
            ((n + 1) as f64).powf(-(alpha - 1.0)).min(1.0 - f64::EPSILON)
        } else {
            0.0
        };
        Zipf { n, alpha, b: 2f64.powf(alpha - 1.0), u_min, gray }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `1..=n` (rank 1 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.gray {
            Some(g) => self.sample_gray(g, rng),
            None => self.sample_devroye(rng),
        }
    }

    fn sample_devroye<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let s = self.alpha;
        let lo = self.u_min.max(f64::EPSILON);
        // The envelope is pre-truncated via `u_min`, so the only remaining
        // rejection is Devroye's bounded acceptance test; a handful of
        // iterations suffices with overwhelming probability. The hard cap
        // is a determinism guarantee for adversarial exponents: on
        // exhaustion, fall back to exact inversion of the truncated CDF.
        for _ in 0..64 {
            let u: f64 = rng.gen_range(lo..1.0);
            let v: f64 = rng.gen();
            let x = u.powf(-1.0 / (s - 1.0)).floor();
            if x < 1.0 || x > self.n as f64 {
                continue; // floating-point edge of the truncation bound
            }
            let t = (1.0 + 1.0 / x).powf(s - 1.0);
            if v * x * (t - 1.0) / (self.b - 1.0) <= t / self.b {
                return x as u64;
            }
        }
        self.sample_inverse_cdf(rng)
    }

    /// Exact inversion of the truncated Zipf CDF by linear scan — O(n) but
    /// only reachable through the `sample_devroye` iteration cap, i.e.
    /// (practically) never.
    fn sample_inverse_cdf<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let zetan = zeta(self.n, self.alpha);
        let target: f64 = rng.gen_range(0.0..zetan);
        let mut acc = 0.0;
        for k in 1..=self.n {
            acc += 1.0 / (k as f64).powf(self.alpha);
            if target < acc {
                return k;
            }
        }
        self.n
    }

    fn sample_gray<R: Rng + ?Sized>(&self, g: &Gray, rng: &mut R) -> u64 {
        if g.theta == 0.0 {
            // Degenerate Zipf is uniform; Gray's approximation is biased here.
            return rng.gen_range(1..=self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * g.zetan;
        // YCSB/Gray produces a 0-based item; ranks here are 1-based.
        if uz < 1.0 {
            return 1;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(g.theta) {
            return 2;
        }
        let _ = g.zeta2;
        let item =
            (self.n as f64 * (g.eta * u - g.eta + 1.0).powf(1.0 / (1.0 - g.theta))) as u64;
        (item + 1).clamp(1, self.n)
    }

    /// Draw a rank and scramble it onto `1..=n` (rank→key is a fixed
    /// pseudorandom bijection-like map; collisions possible but rare).
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        1 + ltpg_mix(rank) % self.n
    }
}

/// splitmix64 finalizer (same mix as the storage index).
fn ltpg_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn freq_of_rank1(n: u64, alpha: f64, draws: usize) -> f64 {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..draws).filter(|_| z.sample(&mut rng) == 1).count();
        hits as f64 / draws as f64
    }

    #[test]
    fn alpha_2_5_concentrates_on_rank_one() {
        // P(rank 1) = 1/ζ(2.5) ≈ 0.745 for large n.
        let f = freq_of_rank1(100_000, 2.5, 40_000);
        assert!((f - 0.745).abs() < 0.02, "rank-1 frequency {f}");
    }

    #[test]
    fn samples_stay_in_domain() {
        for alpha in [0.0, 0.5, 0.99, 1.5, 2.5] {
            let z = Zipf::new(50, alpha);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..5_000 {
                let s = z.sample(&mut rng);
                assert!((1..=50).contains(&s), "alpha {alpha} sampled {s}");
            }
        }
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate().skip(1) {
            let f = c as f64 / 50_000.0;
            assert!((f - 0.1).abs() < 0.03, "key {k} frequency {f}");
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(1_000, 2.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 6];
        for _ in 0..100_000 {
            let s = z.sample(&mut rng);
            if s <= 5 {
                counts[s as usize] += 1;
            }
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        // Ratio rank1/rank2 ≈ 2^2.5 ≈ 5.66.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 5.66).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn scrambled_sampling_preserves_hot_key_identity() {
        let z = Zipf::new(10_000, 2.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = std::collections::HashMap::<u64, usize>::new();
        for _ in 0..20_000 {
            *counts.entry(z.sample_scrambled(&mut rng)).or_default() += 1;
        }
        // One scrambled key should carry ≈74 % of mass.
        let max = counts.values().max().copied().unwrap();
        assert!(max as f64 / 20_000.0 > 0.7);
        // ... and it should not be key 1 (scrambling moved it).
        let hottest = counts.iter().max_by_key(|(_, c)| **c).unwrap().0;
        assert_ne!(*hottest, 1);
    }

    /// Counts 64-bit draws so tests can bound sampler work per sample.
    struct CountingRng {
        inner: StdRng,
        draws: u64,
    }

    impl rand::RngCore for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn alpha_just_above_one_small_n_is_statistically_correct() {
        // The regression regime: alpha in (1, 1+eps] with small n used to
        // reject ~97% of Devroye proposals at the truncation step. The
        // conditioned envelope must still produce the exact truncated
        // Zipf law.
        let (n, alpha, draws) = (16u64, 1.01f64, 200_000usize);
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(0x51ef);
        let mut counts = vec![0usize; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let zetan = zeta(n, alpha);
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let expect = 1.0 / (k as f64).powf(alpha) / zetan;
            let got = count as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: got {got:.4}, want {expect:.4}"
            );
        }
    }

    #[test]
    fn alpha_just_above_one_small_n_is_iteration_bounded() {
        // Each Devroye iteration costs two 64-bit draws; the conditioned
        // envelope accepts within a few iterations, so 10 000 samples must
        // stay well under 16 draws per sample. The pre-fix sampler burned
        // ~75 draws per sample here and diverged further as alpha -> 1+.
        let z = Zipf::new(16, 1.01);
        let mut rng = CountingRng { inner: StdRng::seed_from_u64(3), draws: 0 };
        let samples = 10_000u64;
        for _ in 0..samples {
            let s = z.sample(&mut rng);
            assert!((1..=16).contains(&s));
        }
        assert!(
            rng.draws <= samples * 16,
            "sampler too hot: {} draws for {samples} samples",
            rng.draws
        );
    }

    #[test]
    fn exact_inverse_cdf_fallback_matches_domain() {
        let z = Zipf::new(16, 1.01);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2_000 {
            let s = z.sample_inverse_cdf(&mut rng);
            assert!((1..=16).contains(&s));
        }
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 2.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 1);
        let z0 = Zipf::new(1, 0.5);
        assert_eq!(z0.sample(&mut rng), 1);
    }
}
