//! Address-based conflict-graph scheduling (OptME/Nezha style): build a
//! conflict graph from the transactions' declared access addresses,
//! topologically layer it, and execute the layers in parallel.
//!
//! Unlike GPUTx's all-pairs comparison (quadratic in batch size — the
//! collapse the LTPG paper shows in Table II), the graph is built the way
//! OptME/Nezha do it: **sort the batch's declared accesses by address**, so
//! every conflict edge is an adjacency in the sorted run and layering costs
//! `O(m log m)` in the total access count `m`. Transactions of equal layer
//! (rank) are conflict-free and execute simultaneously as one kernel;
//! layers run in order, separated by device synchronizations. Everything
//! commits (user logic aside); the equivalent serial order is TID order.
//!
//! Transactions whose access sets cannot be declared (read-dependent keys,
//! ordered range scans) do not panic the scheduler the way [`crate::gputx`]
//! does: they are conservatively treated as touching *every* address, which
//! places each one in its own singleton **barrier layer** at its TID
//! position. A batch of undeclarable transactions degenerates to serial
//! execution — correct, just slow, and counted in the
//! `addrgraph.undeclared_txns` telemetry so the adaptive policy can see it.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ltpg_gpu_sim::{Device, DeviceConfig};
use ltpg_storage::Database;
use ltpg_telemetry::{names, Registry};
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{apply_effects, execute_speculative};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport, Tid};

/// Per-batch scheduler statistics, the adaptive policy's input signal.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AddrGraphStats {
    /// Conflict-graph depth: number of execution layers the batch needed
    /// (1 = fully parallel).
    pub layers: u32,
    /// Transactions that could not declare their access sets and ran as
    /// serial barrier layers.
    pub undeclared: u64,
    /// Transactions in the batch.
    pub batch_len: usize,
}

impl AddrGraphStats {
    /// Graph depth normalized by batch size: 0 ≈ flat (parallel) graph,
    /// 1 = fully serialized chain.
    pub fn depth_frac(&self) -> f64 {
        if self.batch_len == 0 {
            0.0
        } else {
            (self.layers.saturating_sub(1)) as f64 / self.batch_len as f64
        }
    }
}

/// The address-graph scheduler core: a simulated device plus per-batch
/// stats, executing against a **borrowed** database. [`AddrGraphEngine`]
/// wraps it with an owned database for standalone [`BatchEngine`] use; the
/// adaptive engine drives the core directly against the LTPG engine's
/// database.
pub struct AddrGraphCore {
    device: Arc<Device>,
    last: AddrGraphStats,
}

impl Default for AddrGraphCore {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrGraphCore {
    /// A core with a default simulated device.
    pub fn new() -> Self {
        Self::with_device(DeviceConfig::default())
    }

    /// A core with an explicit device configuration.
    pub fn with_device(cfg: DeviceConfig) -> Self {
        AddrGraphCore { device: Arc::new(Device::new(cfg)), last: AddrGraphStats::default() }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Stats of the most recent batch.
    pub fn last_stats(&self) -> AddrGraphStats {
        self.last
    }

    /// Execute one batch against `db` (mutating it through the tables'
    /// interior mutability) and report the outcome.
    pub fn execute(&mut self, db: &Database, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        self.device.reset();
        let lane_proc_overhead = self.device.cost().proc_overhead_cycles;
        let n = batch.len();

        // ---- Upload parameters AND declared access sets (12 bytes per
        // access, like GPUTx; undeclarable transactions ship only their
        // parameters). ----
        let declared: Vec<_> = batch.txns.iter().map(declared_accesses).collect();
        let access_bytes: u64 = declared
            .iter()
            .flatten()
            .map(|d| ((d.reads.len() + d.writes.len() + d.inserts.len()) * 12) as u64)
            .sum();
        let h2d = self.device.h2d(batch.payload_bytes() + access_bytes);

        // ---- Layering by address sort. Cost model: each lane emits its
        // accesses into the global (address, tid) key array and
        // participates in an O(m log m) radix/merge sort over it, then one
        // linear scan per sorted run resolves ranks — contrast GPUTx's
        // O(n) all-pairs scan per lane. ----
        let total_accesses: usize = declared
            .iter()
            .flatten()
            .map(|d| d.reads.len() + d.writes.len() + d.inserts.len() + d.deletes.len())
            .sum();
        let log_m = usize::BITS - total_accesses.max(2).leading_zeros();
        self.device.launch_indexed("ag_sort_layer", n, |lane| {
            let own = (total_accesses / n.max(1)).max(1) as u32;
            lane.read_global(own * 2);
            lane.charge_alu(own * log_m);
            lane.write_global(own);
        });
        self.device.synchronize();

        // Host-mirrored deterministic rank computation (the device pass
        // above charges the cost; ranks follow TID order). `last_writer` /
        // `last_reader` hold the deepest rank that wrote / read an address;
        // `barrier` is the deepest undeclarable (touches-everything) rank.
        let mut rank = vec![0u32; n];
        let mut stats = AddrGraphStats { batch_len: n, ..AddrGraphStats::default() };
        {
            let mut last_writer_rank: HashMap<(u16, i64), u32> = HashMap::new();
            let mut last_reader_rank: HashMap<(u16, i64), u32> = HashMap::new();
            let mut barrier = 0u32; // deepest undeclarable rank so far
            let mut deepest = 0u32; // deepest rank assigned so far
            for (i, d) in declared.iter().enumerate() {
                let r = match d {
                    Some(d) => {
                        let mut r = 1 + barrier;
                        for (t, k) in &d.reads {
                            if let Some(&wr) = last_writer_rank.get(&(t.0, *k)) {
                                r = r.max(wr + 1);
                            }
                        }
                        for (t, k) in d.all_writes() {
                            if let Some(&wr) = last_writer_rank.get(&(t.0, k)) {
                                r = r.max(wr + 1);
                            }
                            if let Some(&rr) = last_reader_rank.get(&(t.0, k)) {
                                r = r.max(rr + 1);
                            }
                        }
                        for (t, k) in &d.reads {
                            let e = last_reader_rank.entry((t.0, *k)).or_insert(0);
                            *e = (*e).max(r);
                        }
                        for (t, k) in d.all_writes() {
                            let e = last_writer_rank.entry((t.0, k)).or_insert(0);
                            *e = (*e).max(r);
                        }
                        r
                    }
                    None => {
                        // Conflicts with everything before and after: rank
                        // past every assigned rank, and raise the barrier so
                        // later transactions rank past it — a guaranteed
                        // singleton layer.
                        stats.undeclared += 1;
                        let r = deepest + 1;
                        barrier = r;
                        r
                    }
                };
                rank[i] = r;
                deepest = deepest.max(r);
            }
        }

        // ---- Execute rank layers as kernels. ----
        let max_rank = rank.iter().copied().max().unwrap_or(0);
        stats.layers = max_rank;
        let mut committed: Vec<Tid> = Vec::with_capacity(n);
        let mut aborted: Vec<Tid> = Vec::new();
        for r in 1..=max_rank {
            let layer: Vec<(usize, usize)> =
                (0..n).filter(|&i| rank[i] == r).enumerate().collect();
            if layer.is_empty() {
                continue;
            }
            let results: Vec<_> = {
                let slots: Vec<parking_lot::Mutex<Option<_>>> =
                    layer.iter().map(|_| parking_lot::Mutex::new(None)).collect();
                self.device.launch("ag_exec_layer", &layer, |lane, &(pos, i)| {
                    let txn = &batch.txns[i];
                    lane.branch(u32::from(txn.proc.0));
                    lane.charge_alu(txn.ops.len() as u32);
                    lane.charge_cycles(lane_proc_overhead);
                    lane.read_global_random(2 * txn.ops.len() as u32);
                    lane.write_global(txn.ops.len() as u32);
                    *slots[pos].lock() = Some(execute_speculative(db, txn));
                });
                slots.into_iter().map(|s| s.into_inner()).collect()
            };
            for (pos, res) in results.into_iter().enumerate() {
                let i = layer[pos].1;
                match res.expect("lane ran") {
                    Ok(fx) => {
                        apply_effects(db, &fx).expect("address-graph apply");
                        committed.push(batch.txns[i].tid);
                    }
                    Err(_) => aborted.push(batch.txns[i].tid),
                }
            }
            self.device.synchronize();
        }
        committed.sort_unstable();

        // ---- Download results. ----
        let d2h = self.device.d2h(n as u64 * 8);
        let sim_ns = self.device.elapsed_ns();
        self.last = stats;

        BatchReport {
            committed,
            aborted,
            sim_ns,
            critical_path_ns: sim_ns,
            transfer_ns: h2d + d2h,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }

    /// Publish the last batch's scheduler internals (graph depth,
    /// undeclarable count) to `reg`.
    pub fn publish_stats(&self, reg: &Registry) {
        reg.histogram(names::ADDRGRAPH_LAYERS).record(self.last.layers as u64);
        reg.counter(names::ADDRGRAPH_UNDECLARED).add(self.last.undeclared);
    }
}

/// The address-graph engine: [`AddrGraphCore`] plus an owned database.
pub struct AddrGraphEngine {
    db: Database,
    core: AddrGraphCore,
}

impl AddrGraphEngine {
    /// Create an engine with a default simulated device.
    pub fn new(db: Database) -> Self {
        Self::with_device(db, DeviceConfig::default())
    }

    /// Create with an explicit device configuration.
    pub fn with_device(db: Database, cfg: DeviceConfig) -> Self {
        let core = AddrGraphCore::with_device(cfg);
        core.device.register_allocation(db.bytes());
        AddrGraphEngine { db, core }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        self.core.device()
    }

    /// Stats of the most recent batch.
    pub fn last_stats(&self) -> AddrGraphStats {
        self.core.last_stats()
    }
}

impl BatchEngine for AddrGraphEngine {
    fn name(&self) -> &'static str {
        "AddrGraph"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        self.core.execute(&self.db, batch)
    }

    fn record_telemetry(&self, registry: &Registry, report: &BatchReport) {
        let n = self.name();
        registry.counter(&format!("engine.{n}.batches")).inc();
        registry.counter(&format!("engine.{n}.committed")).add(report.committed.len() as u64);
        registry.counter(&format!("engine.{n}.abort_events")).add(report.aborted.len() as u64);
        registry.histogram(&format!("engine.{n}.batch_sim_ns")).record_ns(report.sim_ns);
        registry
            .histogram(&format!("engine.{n}.critical_path_ns"))
            .record_ns(report.critical_path_ns);
        self.core.publish_stats(registry);
    }
}

impl std::fmt::Debug for AddrGraphEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddrGraphEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, Table, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{execute_serial, ComputeFn, IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(256).build());
        for k in 0..50 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    #[test]
    fn contended_chain_layers_and_commits_all() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..40).map(|_| rmw(t, 7)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        assert_eq!(engine.last_stats().layers, 40, "hot-key chain must be fully serialized");
        let rid = engine.database().table(t).lookup(7).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 40);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn disjoint_batch_is_one_layer() {
        let (db, t) = setup();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..40).map(|k| rmw(t, k as i64)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        assert_eq!(engine.last_stats().layers, 1);
        assert!((engine.last_stats().depth_frac() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn undeclarable_txns_become_serial_barriers_not_panics() {
        // GPUTx panics on ordered range scans; the address graph must run
        // them as barrier layers, bit-identical to TID-order serial
        // execution.
        let mut db = Database::new();
        let schema = TableBuilder::new("T").columns(["a", "b"]).capacity(256).build();
        let t = db.add_built_table(Table::new(schema).with_ordered());
        for k in 0..50 {
            db.table(t).insert(k, &[k, 0]).unwrap();
        }
        let serial_db = db.deep_clone();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let scan = |lo: i64| {
            Txn::new(
                ProcId(1),
                vec![],
                vec![
                    IrOp::RangeSum { table: t, lo: Src::Const(lo), hi: Src::Const(lo + 10), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(lo), col: ColId(1), val: Src::Reg(0) },
                ],
            )
        };
        let txns = vec![rmw(t, 2), scan(0), rmw(t, 5), scan(3), rmw(t, 2)];
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 5);
        assert_eq!(engine.last_stats().undeclared, 2);
        for txn in &batch.txns {
            execute_serial(&serial_db, txn).unwrap();
        }
        assert_eq!(engine.database().state_digest(), serial_db.state_digest());
    }

    #[test]
    fn readers_share_a_layer() {
        let (db, t) = setup();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let readers: Vec<Txn> = (0..30)
            .map(|_| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Read { table: t, key: Src::Const(1), col: ColId(0), out: 0 }],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], readers, &mut gen);
        engine.execute_batch(&batch);
        assert_eq!(engine.last_stats().layers, 1);
    }

    #[test]
    fn duplicate_insert_aborts_like_serial_order() {
        let (db, t) = setup();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let ins = |k: i64, v: i64| {
            Txn::new(
                ProcId(2),
                vec![],
                vec![IrOp::Insert { table: t, key: Src::Const(k), values: vec![Src::Const(v), Src::Const(0)] }],
            )
        };
        // Two inserts of the same fresh key: the earlier TID wins.
        let batch = Batch::assemble(vec![], vec![ins(100, 1), ins(100, 2)], &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed, vec![batch.txns[0].tid]);
        assert_eq!(report.aborted, vec![batch.txns[1].tid]);
        let rid = engine.database().table(t).lookup(100).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 1);
    }

    #[test]
    fn telemetry_publishes_depth_signal() {
        let (db, t) = setup();
        let mut engine = AddrGraphEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..8).map(|_| rmw(t, 7)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        let reg = Registry::new();
        engine.record_telemetry(&reg, &report);
        assert_eq!(reg.counter_value(names::ADDRGRAPH_UNDECLARED), 0);
        assert!(engine.last_stats().depth_frac() > 0.8);
    }
}
