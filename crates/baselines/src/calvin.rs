//! Calvin (Thomson et al., SIGMOD 2012): deterministic locking over
//! pre-declared read/write sets.
//!
//! A **single-threaded lock manager** walks the batch in TID order and
//! enqueues each transaction's declared row locks. A transaction executes
//! (on the worker pool) once every one of its lock requests is at a
//! granted position — for a write, everything ahead of it in that row's
//! queue must be gone; for a read, everything ahead must also be reads.
//! Because queues are built in TID order, the resulting schedule is
//! conflict-equivalent to TID order and every transaction commits.
//!
//! The serial lock manager is Calvin's famous bottleneck; its time is
//! charged as non-parallelizable, which is what caps the engine's
//! throughput in Table II regardless of worker count.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::execute_serial;
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport};

use crate::cpu::{CpuCostModel, ParallelClock};

/// A lock request in a per-row queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LockReq {
    txn: usize,
    write: bool,
}

/// The Calvin engine.
pub struct CalvinEngine {
    db: Database,
    cost: CpuCostModel,
}

impl CalvinEngine {
    /// Create an engine over `db`.
    pub fn new(db: Database) -> Self {
        CalvinEngine { db, cost: CpuCostModel::default() }
    }
}

impl BatchEngine for CalvinEngine {
    fn name(&self) -> &'static str {
        "Calvin"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let mut clock = ParallelClock::new(self.cost.workers);
        let n = batch.len();

        // ---- Lock manager: build per-row queues in TID order (serial). ----
        let mut queues: HashMap<(u16, i64), VecDeque<LockReq>> = HashMap::new();
        let mut rows_of: Vec<Vec<(u16, i64)>> = vec![Vec::new(); n];
        let mut lock_ops = 0usize;
        for (i, txn) in batch.txns.iter().enumerate() {
            let acc = declared_accesses(txn)
                .expect("Calvin requires statically declarable transactions");
            // One request per row at the strongest mode (read-then-write
            // rows take a write lock up front, as Calvin requires).
            let mut modes: Vec<((u16, i64), bool)> = Vec::new();
            for (t, k) in &acc.reads {
                if !modes.iter().any(|(row, _)| *row == (t.0, *k)) {
                    modes.push(((t.0, *k), false));
                }
            }
            for (t, k) in acc.all_writes() {
                match modes.iter_mut().find(|(row, _)| *row == (t.0, k)) {
                    Some((_, w)) => *w = true,
                    None => modes.push(((t.0, k), true)),
                }
            }
            for (row, write) in modes {
                queues.entry(row).or_default().push_back(LockReq { txn: i, write });
                rows_of[i].push(row);
                lock_ops += 1;
            }
        }
        // Grant + release are lock-manager work too (3 ops per request).
        clock.serial(lock_ops as f64 * self.cost.lock_ns * 3.0);

        // ---- Scheduler loop: execute transactions as locks grant. ----
        // A txn is ready if, in every queue of a row it touches, all
        // entries ahead of its first occurrence are compatible reads (when
        // it reads) or absent (when it writes).
        let granted = |queues: &HashMap<(u16, i64), VecDeque<LockReq>>, rows: &[(u16, i64)], i: usize| {
            rows.iter().all(|row| {
                let q = &queues[row];
                let Some(pos) = q.iter().position(|r| r.txn == i) else { return true };
                if q[pos].write {
                    pos == 0
                } else {
                    q.iter().take(pos).all(|r| !r.write)
                }
            })
        };
        let mut done = vec![false; n];
        let mut remaining = n;
        let mut committed = Vec::with_capacity(n);
        while remaining > 0 {
            let mut progressed = false;
            for i in 0..n {
                if done[i] || !granted(&queues, &rows_of[i], i) {
                    continue;
                }
                let txn = &batch.txns[i];
                // Execute on a worker; Calvin's visibility is current-state
                // under locks, equivalent to TID-order serial execution.
                let ns = txn.ops.len() as f64 * (self.cost.index_ns + self.cost.read_ns)
                    + rows_of[i].len() as f64 * self.cost.lock_ns;
                clock.assign(ns);
                let _ = execute_serial(&self.db, txn);
                for row in &rows_of[i] {
                    if let Some(q) = queues.get_mut(row) {
                        q.retain(|r| r.txn != i);
                    }
                }
                done[i] = true;
                remaining -= 1;
                committed.push(txn.tid);
                progressed = true;
            }
            assert!(progressed, "Calvin scheduler stalled — queue invariant broken");
        }
        committed.sort_unstable();

        BatchReport {
            committed,
            aborted: Vec::new(),
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for CalvinEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalvinEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(128).build());
        for k in 0..20 {
            db.table(t).insert(k, &[k, 0]).unwrap();
        }
        (db, t)
    }

    #[test]
    fn everything_commits_and_matches_tid_order_replay() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = CalvinEngine::new(db);
        let mut gen = TidGen::new();
        // Heavy RMW contention on one row: Calvin serializes, commits all.
        let txns: Vec<Txn> = (0..20)
            .map(|_| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![
                        IrOp::Read { table: t, key: Src::Const(5), col: ColId(0), out: 0 },
                        IrOp::Compute {
                            f: ltpg_txn::ComputeFn::Add,
                            a: Src::Reg(0),
                            b: Src::Const(1),
                            out: 0,
                        },
                        IrOp::Update { table: t, key: Src::Const(5), col: ColId(0), val: Src::Reg(0) },
                    ],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 20);
        assert!(report.aborted.is_empty());
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
        // The RMW chain really accumulated: 5 + 20.
        let rid = engine.database().table(t).lookup(5).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 25);
    }

    #[test]
    fn readers_share_locks() {
        let (db, t) = setup();
        let mut engine = CalvinEngine::new(db);
        let mut gen = TidGen::new();
        let txns: Vec<Txn> = (0..10)
            .map(|_| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Read { table: t, key: Src::Const(3), col: ColId(0), out: 0 }],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 10);
    }

    #[test]
    fn lock_manager_time_is_serial() {
        let (db, t) = setup();
        let mut engine = CalvinEngine::new(db);
        let mut gen = TidGen::new();
        let mk = |n: usize, gen: &mut TidGen| {
            let txns = (0..n)
                .map(|i| {
                    Txn::new(
                        ProcId(0),
                        vec![],
                        vec![IrOp::Update {
                            table: t,
                            key: Src::Const((i % 20) as i64),
                            col: ColId(0),
                            val: Src::Const(1),
                        }],
                    )
                })
                .collect();
            Batch::assemble(vec![], txns, gen)
        };
        let small = engine.execute_batch(&mk(50, &mut gen)).sim_ns;
        let big = engine.execute_batch(&mk(500, &mut gen)).sim_ns;
        // 10x the lock requests: at least ~8x the serial lock time.
        assert!(big > small * 5.0, "small {small}, big {big}");
    }
}
