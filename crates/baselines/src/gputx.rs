//! GPUTx (He & Yu, VLDB 2011): bulk-synchronous execution driven by a
//! T-dependency graph.
//!
//! From the pre-declared access sets, GPUTx builds a **T-dependency graph**
//! (an edge between two transactions that touch a common row with at least
//! one write) and assigns each transaction a *rank* — its depth in that
//! graph. Transactions of equal rank are conflict-free and execute
//! simultaneously as one kernel; ranks execute in order, each separated by
//! a device synchronization. Everything commits; the equivalent serial
//! order is TID order (edges follow TID).
//!
//! High contention makes the graph deep: rank count approaches batch size
//! and execution degenerates to a sequence of tiny kernels — the
//! serialization collapse the LTPG paper highlights for dependency-graph
//! systems (and the reason for GPUTx's Table II numbers).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ltpg_gpu_sim::{Device, DeviceConfig};
use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{apply_effects, execute_speculative};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport};

/// The GPUTx engine.
pub struct GputxEngine {
    db: Database,
    device: Arc<Device>,
}

impl GputxEngine {
    /// Create an engine with a default simulated device.
    pub fn new(db: Database) -> Self {
        Self::with_device(db, DeviceConfig::default())
    }

    /// Create with an explicit device configuration.
    pub fn with_device(db: Database, cfg: DeviceConfig) -> Self {
        let device = Arc::new(Device::new(cfg));
        device.register_allocation(db.bytes());
        GputxEngine { db, device }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl BatchEngine for GputxEngine {
    fn name(&self) -> &'static str {
        "GPUTx"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        self.device.reset();
        let lane_proc_overhead = self.device.cost().proc_overhead_cycles;
        let n = batch.len();

        // ---- Upload parameters AND access sets (GPUTx ships both). ----
        let declared: Vec<_> = batch
            .txns
            .iter()
            .map(|t| declared_accesses(t).expect("GPUTx requires declarable transactions"))
            .collect();
        let access_bytes: u64 =
            declared.iter().map(|d| ((d.reads.len() + d.writes.len() + d.inserts.len()) * 12) as u64).sum();
        let h2d = self.device.h2d(batch.payload_bytes() + access_bytes);

        // ---- Build the T-dependency graph → ranks. ----
        // rank(T) = 1 + max rank over earlier conflicting transactions.
        // GPUTx (2011) constructs the graph by comparing every
        // transaction's access set against every other's — one lane per
        // transaction scanning all n access summaries. This quadratic
        // pass is what makes GPUTx collapse at large batches (the paper's
        // Table II shows it *slowing down* as warehouses/batches grow).
        let mut rank = vec![0u32; n];
        {
            let avg_accesses = (declared
                .iter()
                .map(|d| d.reads.len() + d.writes.len() + d.inserts.len())
                .sum::<usize>()
                / n.max(1))
            .max(1) as u32;
            self.device.launch_indexed("build_graph", n, |lane| {
                // Compare against every other transaction's summary.
                lane.read_global(n as u32 * 2);
                lane.charge_alu(n as u32 * avg_accesses.min(8));
                lane.write_global(1);
            });
            self.device.synchronize();
            // Host-mirrored deterministic rank computation (the device pass
            // above charges the cost; ranks follow TID order).
            let mut last_writer_rank: HashMap<(u16, i64), u32> = HashMap::new();
            let mut last_reader_rank: HashMap<(u16, i64), u32> = HashMap::new();
            for (i, d) in declared.iter().enumerate() {
                let mut r = 1u32;
                for (t, k) in &d.reads {
                    if let Some(&wr) = last_writer_rank.get(&(t.0, *k)) {
                        r = r.max(wr + 1);
                    }
                }
                for (t, k) in d.all_writes() {
                    if let Some(&wr) = last_writer_rank.get(&(t.0, k)) {
                        r = r.max(wr + 1);
                    }
                    if let Some(&rr) = last_reader_rank.get(&(t.0, k)) {
                        r = r.max(rr + 1);
                    }
                }
                rank[i] = r;
                for (t, k) in &d.reads {
                    let e = last_reader_rank.entry((t.0, *k)).or_insert(0);
                    *e = (*e).max(r);
                }
                for (t, k) in d.all_writes() {
                    let e = last_writer_rank.entry((t.0, k)).or_insert(0);
                    *e = (*e).max(r);
                }
            }
        }

        // ---- Execute rank layers as kernels. ----
        let max_rank = rank.iter().copied().max().unwrap_or(0);
        let mut committed = Vec::with_capacity(n);
        let mut aborted = Vec::new();
        for r in 1..=max_rank {
            let layer: Vec<(usize, usize)> =
                (0..n).filter(|&i| rank[i] == r).enumerate().collect();
            // Conflict-free within a layer: speculate on lanes, apply after.
            let db = &self.db;
            let results: Vec<_> = {
                let slots: Vec<parking_lot::Mutex<Option<_>>> =
                    layer.iter().map(|_| parking_lot::Mutex::new(None)).collect();
                self.device.launch("exec_rank", &layer, |lane, &(pos, i)| {
                    let txn = &batch.txns[i];
                    lane.branch(u32::from(txn.proc.0));
                    lane.charge_alu(txn.ops.len() as u32);
                lane.charge_cycles(lane_proc_overhead);
                    lane.read_global_random(2 * txn.ops.len() as u32);
                    lane.write_global(txn.ops.len() as u32);
                    *slots[pos].lock() = Some(execute_speculative(db, txn));
                });
                slots.into_iter().map(|s| s.into_inner()).collect()
            };
            for (pos, res) in results.into_iter().enumerate() {
                let i = layer[pos].1;
                match res.expect("lane ran") {
                    Ok(fx) => {
                        apply_effects(&self.db, &fx).expect("GPUTx apply");
                        committed.push(batch.txns[i].tid);
                    }
                    Err(_) => aborted.push(batch.txns[i].tid),
                }
            }
            self.device.synchronize();
        }
        committed.sort_unstable();

        // ---- Download results. ----
        let d2h = self.device.d2h(n as u64 * 8);
        let sim_ns = self.device.elapsed_ns();

        BatchReport {
            committed,
            aborted,
            sim_ns,
            critical_path_ns: sim_ns,
            transfer_ns: h2d + d2h,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for GputxEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GputxEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(256).build());
        for k in 0..50 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    #[test]
    fn contended_chain_serializes_by_rank_and_commits_all() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = GputxEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..40).map(|_| rmw(t, 7)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        let rid = engine.database().table(t).lookup(7).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 40);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn disjoint_batch_is_one_rank_and_contended_is_many_kernels() {
        let (db, t) = setup();
        let mut engine = GputxEngine::new(db);
        let mut gen = TidGen::new();
        let disjoint = Batch::assemble(vec![], (0..40).map(|k| rmw(t, k as i64)).collect(), &mut gen);
        let r1 = engine.execute_batch(&disjoint);
        let k1 = engine.device().stats().kernels;
        let contended = Batch::assemble(vec![], (0..40).map(|_| rmw(t, 3)).collect(), &mut gen);
        let r2 = engine.execute_batch(&contended);
        let k2 = engine.device().stats().kernels;
        assert!(k2 > k1, "contended batch must need more rank kernels ({k1} vs {k2})");
        assert!(r2.sim_ns > r1.sim_ns, "serialized ranks must cost more");
    }

    #[test]
    fn readers_share_a_rank() {
        let (db, t) = setup();
        let mut engine = GputxEngine::new(db);
        let mut gen = TidGen::new();
        let readers: Vec<Txn> = (0..30)
            .map(|_| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Read { table: t, key: Src::Const(1), col: ColId(0), out: 0 }],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], readers, &mut gen);
        engine.execute_batch(&batch);
        // One graph pass + exactly one execution rank.
        assert_eq!(engine.device().stats().kernels, 2);
    }
}
