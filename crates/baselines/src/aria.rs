//! Aria (Lu et al., VLDB 2020): deterministic batch OCC on CPUs.
//!
//! Each batch runs in two phases. In the **read/write phase** every
//! transaction executes against the current database snapshot, buffering
//! writes locally and *reserving* the rows it read and wrote in per-batch
//! reservation tables (minimum-TID per row, maintained with atomic-min in
//! the original; sequentially here, which is equivalent). In the **commit
//! phase** a transaction commits iff it has no WAW conflict and no RAW
//! conflict — or, with Aria's deterministic reordering enabled, iff
//! `¬WAW ∧ (¬RAW ∨ ¬WAR)`. Aborted transactions are rescheduled with
//! their original TIDs.
//!
//! Differences from LTPG worth remembering when reading benchmark results:
//! Aria reserves at **row** granularity with no column splitting, has no
//! delayed-update path (every `Add` is a plain read-modify-write), and its
//! per-batch phase barriers are CPU-pool barriers.

use std::collections::HashMap;
use std::time::Instant;

use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{apply_effects, execute_speculative, Mutation, TxnEffects};
use ltpg_txn::{Batch, BatchEngine, BatchReport};

use crate::cpu::{CpuCostModel, ParallelClock};

/// The Aria engine.
pub struct AriaEngine {
    db: Database,
    cost: CpuCostModel,
    /// Deterministic reordering (§4.2 of the Aria paper). On by default,
    /// as in the paper's evaluated configuration.
    reorder: bool,
}

impl AriaEngine {
    /// Create an engine with reordering enabled.
    pub fn new(db: Database) -> Self {
        AriaEngine { db, cost: CpuCostModel::default(), reorder: true }
    }

    /// Toggle deterministic reordering.
    pub fn with_reordering(mut self, on: bool) -> Self {
        self.reorder = on;
        self
    }

    /// Row-granularity key of a mutation.
    fn row_of(m: &Mutation) -> (u16, i64) {
        match m {
            Mutation::Update { table, key, .. }
            | Mutation::Add { table, key, .. }
            | Mutation::Insert { table, key, .. }
            | Mutation::Delete { table, key } => (table.0, *key),
        }
    }
}

impl BatchEngine for AriaEngine {
    fn name(&self) -> &'static str {
        "Aria"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let mut clock = ParallelClock::new(self.cost.workers);
        let n = batch.len();

        // ---- Read/write phase: speculate + reserve. ----
        let mut all_fx: Vec<Option<TxnEffects>> = Vec::with_capacity(n);
        let mut read_rsv: HashMap<(u16, i64), u64> = HashMap::new();
        let mut write_rsv: HashMap<(u16, i64), u64> = HashMap::new();
        for txn in &batch.txns {
            let mut ns = self.cost.alu_ns * txn.ops.len() as f64;
            match execute_speculative(&self.db, txn) {
                Err(_) => {
                    all_fx.push(None);
                    clock.assign(ns + self.cost.abort_ns);
                    continue;
                }
                Ok(fx) => {
                    ns += fx.reads.len() as f64 * (self.cost.index_ns + self.cost.read_ns);
                    ns += fx.mutations.len() as f64 * self.cost.write_ns;
                    for r in &fx.reads {
                        let e = read_rsv.entry((r.table.0, r.key)).or_insert(u64::MAX);
                        *e = (*e).min(txn.tid.0);
                        ns += self.cost.write_ns; // reservation store
                    }
                    for m in &fx.mutations {
                        let e = write_rsv.entry(Self::row_of(m)).or_insert(u64::MAX);
                        *e = (*e).min(txn.tid.0);
                        ns += self.cost.write_ns;
                        if matches!(m, Mutation::Add { .. }) {
                            // RMW also reserves as a read.
                            let e = read_rsv.entry(Self::row_of(m)).or_insert(u64::MAX);
                            *e = (*e).min(txn.tid.0);
                        }
                    }
                    all_fx.push(Some(fx));
                    clock.assign(ns);
                }
            }
        }
        clock.serial(self.cost.barrier_ns);

        // ---- Commit phase: conflict analysis + apply. ----
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        for (i, txn) in batch.txns.iter().enumerate() {
            let Some(fx) = &all_fx[i] else {
                aborted.push(txn.tid);
                continue;
            };
            let tid = txn.tid.0;
            let mut ns = 0.0;
            let mut waw = false;
            let mut raw = false;
            let mut war = false;
            for m in &fx.mutations {
                let row = Self::row_of(m);
                ns += self.cost.validate_ns;
                if write_rsv.get(&row).is_some_and(|&m| m < tid) {
                    waw = true;
                }
                if read_rsv.get(&row).is_some_and(|&m| m < tid) {
                    war = true;
                }
                if matches!(m, Mutation::Add { .. })
                    && write_rsv.get(&row).is_some_and(|&m| m < tid)
                {
                    raw = true;
                }
            }
            for r in &fx.reads {
                ns += self.cost.validate_ns;
                if write_rsv.get(&(r.table.0, r.key)).is_some_and(|&m| m < tid) {
                    raw = true;
                }
            }
            let ok = !waw && if self.reorder { !raw || !war } else { !raw };
            if ok {
                ns += fx.mutations.len() as f64 * (self.cost.index_ns + self.cost.write_ns);
                apply_effects(&self.db, fx).expect("Aria commit apply");
                committed.push(txn.tid);
            } else {
                ns += self.cost.abort_ns;
                aborted.push(txn.tid);
            }
            clock.assign(ns);
        }
        clock.serial(self.cost.barrier_ns);

        BatchReport {
            committed,
            aborted,
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SnapshotBatch,
        }
    }
}

impl std::fmt::Debug for AriaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AriaEngine").field("reorder", &self.reorder).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_snapshot_serializable;
    use ltpg_txn::{IrOp, ProcId, Src, Tid, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(128).build());
        for k in 0..50 {
            db.table(t).insert(k, &[k, 0]).unwrap();
        }
        (db, t)
    }

    fn write(t: TableId, k: i64, v: i64) -> IrOp {
        IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Const(v) }
    }
    fn read(t: TableId, k: i64) -> IrOp {
        IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 }
    }

    fn run(reorder: bool, txns: Vec<Txn>) -> (AriaEngine, Batch, BatchReport, Database) {
        let (db, _t) = setup();
        let pre = db.deep_clone();
        let mut engine = AriaEngine::new(db).with_reordering(reorder);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        (engine, batch, report, pre)
    }

    #[test]
    fn waw_keeps_min_tid_writer_and_result_is_serializable() {
        let (_db, t) = setup();
        let txns = (0..6).map(|i| Txn::new(ProcId(0), vec![], vec![write(t, 3, i)])).collect();
        let (engine, batch, report, pre) = run(true, txns);
        assert_eq!(report.committed, vec![Tid(1)]);
        let committed: Vec<&Txn> =
            report.committed.iter().map(|t| batch.by_tid(*t).unwrap()).collect();
        check_snapshot_serializable(&pre, &committed, engine.database()).unwrap();
    }

    #[test]
    fn reordering_admits_war_only_pairs() {
        let (_db, t) = setup();
        let mk = || {
            vec![
                Txn::new(ProcId(0), vec![], vec![read(t, 9)]),
                Txn::new(ProcId(0), vec![], vec![write(t, 9, 99)]),
            ]
        };
        let (.., r_on, _) = run(true, mk());
        assert_eq!(r_on.committed.len(), 2);
        // Plain Aria also commits this (the writer has WAR, not RAW) — the
        // distinguishing case is the reader AFTER the writer:
        let mk2 = || {
            vec![
                Txn::new(ProcId(0), vec![], vec![write(t, 9, 99)]),
                Txn::new(ProcId(0), vec![], vec![read(t, 9)]),
            ]
        };
        let (.., r2_plain, _) = run(false, mk2());
        assert_eq!(r2_plain.committed, vec![Tid(1)]);
        let (.., r2_on, _) = run(true, mk2());
        // Reader has RAW but no WAR (it writes nothing): reordering commits.
        assert_eq!(r2_on.committed.len(), 2);
    }

    #[test]
    fn disjoint_batch_commits_fully_with_time_accounted() {
        let (_db, t) = setup();
        let txns = (0..40).map(|k| Txn::new(ProcId(0), vec![], vec![write(t, k, k)])).collect();
        let (engine, _b, report, _p) = run(true, txns);
        assert_eq!(report.committed.len(), 40);
        assert!(report.sim_ns > 0.0);
        assert_eq!(report.transfer_ns, 0.0);
        let rid = engine.database().table(TableId(0)).lookup(7).unwrap();
        assert_eq!(engine.database().table(TableId(0)).get(rid, ColId(0)), 7);
    }

    #[test]
    fn rmw_adds_conflict_like_reads_plus_writes() {
        let (_db, t) = setup();
        let add = |k: i64| {
            Txn::new(
                ProcId(0),
                vec![],
                vec![IrOp::Add { table: t, key: Src::Const(k), col: ColId(1), delta: Src::Const(1) }],
            )
        };
        let (.., report, _) = run(true, vec![add(5), add(5), add(5)]);
        // RMWs on one row: WAW for all but the first.
        assert_eq!(report.committed.len(), 1);
    }
}
