//! Block-STM (Gelashvili et al., PPoPP 2023): optimistic parallel execution
//! with per-location versioned reads, validation, and deterministic
//! re-execution waves on validation failure.
//!
//! Every unfinalized transaction executes speculatively against the current
//! committed state (one lane per transaction, no declared access sets
//! needed). A greedy validation pass in TID order then finalizes the
//! transactions whose read sets were *not* invalidated: a transaction is
//! valid iff none of its read locations intersect (a) the locations written
//! by transactions finalized earlier in this wave or (b) the locations a
//! *deferred* earlier transaction may still write, and none of its own
//! writes intersect a deferred earlier transaction's possible reads.
//! Invalidated transactions re-execute in the next wave against the updated
//! state. The committed history is **bit-identical to serial execution in
//! TID order** — the preset-order guarantee of real Block-STM — so the
//! engine reports [`CommitSemantics::SerialOrder`] with TID order as the
//! equivalent serial order, and only user logic (duplicate inserts) aborts.
//!
//! Locations are cell-granular: `(table, key, column)`, with a slot for the
//! row-existence bit and `ltpg_storage::membership_key` pseudo-cells
//! versioning a partition's key set (phantom protection for ordered scans).
//! Blind writes — an update that never reads the cell it overwrites, the
//! YCSB update shape — can never be invalidated, which is why Block-STM
//! keeps committing in one or two waves under write-heavy contention where
//! abort-based schemes throw work away.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use ltpg_gpu_sim::{Device, DeviceConfig};
use ltpg_storage::{membership_key, Database, MEMBERSHIP_PARTITION_SHIFT};
use ltpg_telemetry::{names, Registry};
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{apply_effects, execute_speculative, ExecError, Mutation, ReadAccess, TxnEffects};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport, Tid, Txn};

/// A versioned memory location: `(table, key, slot)` where slot 0 is the
/// row-existence cell and slot `c + 1` is column `c`. Membership pseudo-keys
/// version a table partition's key set.
pub type Loc = (u16, i64, u16);

#[inline]
fn read_loc(r: &ReadAccess) -> Loc {
    (r.table.0, r.key, r.col.map(|c| c.0 + 1).unwrap_or(0))
}

/// Locations `fx` actually writes. Inserts and deletes touch the existence
/// cell, every column, and the key's membership partition.
fn write_locs(db: &Database, fx: &TxnEffects, out: &mut Vec<Loc>) {
    for m in &fx.mutations {
        match m {
            Mutation::Update { table, key, col, .. } | Mutation::Add { table, key, col, .. } => {
                out.push((table.0, *key, col.0 + 1));
            }
            Mutation::Insert { table, key, .. } | Mutation::Delete { table, key } => {
                out.push((table.0, *key, 0));
                for c in 0..db.table(*table).width() as u16 {
                    out.push((table.0, *key, c + 1));
                }
                out.push((table.0, membership_key(key >> MEMBERSHIP_PARTITION_SHIFT), 0));
            }
        }
    }
}

/// Conservative superset of every location a *re-execution* of `txn` may
/// write, derived from its declared access sets (row-expanded to all cells:
/// an update of a currently-missing row becomes a real write if an earlier
/// transaction inserts the row between waves). `None` when the transaction
/// is undeclarable — its future footprint is unknowable.
fn declared_write_locs(db: &Database, txn: &Txn) -> Option<Vec<Loc>> {
    let d = declared_accesses(txn)?;
    let mut locs = Vec::new();
    for (t, k) in d.all_writes() {
        locs.push((t.0, k, 0));
        for c in 0..db.table(t).width() as u16 {
            locs.push((t.0, k, c + 1));
        }
    }
    for (t, k) in d.inserts.iter().chain(d.deletes.iter()) {
        locs.push((t.0, membership_key(k >> MEMBERSHIP_PARTITION_SHIFT), 0));
    }
    Some(locs)
}

/// Conservative superset of every location a re-execution of `txn` may
/// read (declared read *and* write rows, row-expanded: writes of missing
/// rows record existence probes, inserts probe for duplicates).
fn declared_read_locs(db: &Database, txn: &Txn) -> Option<Vec<Loc>> {
    let d = declared_accesses(txn)?;
    let mut locs = Vec::new();
    let rows = d
        .reads
        .iter()
        .copied()
        .chain(d.all_writes())
        .chain(d.deletes.iter().copied());
    for (t, k) in rows {
        locs.push((t.0, k, 0));
        for c in 0..db.table(t).width() as u16 {
            locs.push((t.0, k, c + 1));
        }
    }
    Some(locs)
}

/// Per-batch scheduler statistics, the adaptive policy's input signal.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockStmStats {
    /// Optimistic-execution waves the batch needed (1 = no invalidation).
    pub waves: u32,
    /// Transaction-wave deferrals (read-set invalidations forcing a
    /// re-execution). Pure RAW pressure: blind writes never defer.
    pub deferrals: u64,
    /// Transactions in the batch.
    pub batch_len: usize,
}

impl BlockStmStats {
    /// Deferrals normalized by batch size — comparable across batch sizes
    /// and engines. Can exceed 1.0 when transactions defer repeatedly.
    pub fn deferral_frac(&self) -> f64 {
        if self.batch_len == 0 {
            0.0
        } else {
            self.deferrals as f64 / self.batch_len as f64
        }
    }
}

/// The Block-STM scheduler core: a simulated device plus per-batch stats,
/// executing against a **borrowed** database. [`BlockStmEngine`] wraps it
/// with an owned database for standalone [`BatchEngine`] use; the adaptive
/// engine drives the core directly against the LTPG engine's database.
pub struct BlockStmCore {
    device: Arc<Device>,
    last: BlockStmStats,
}

impl Default for BlockStmCore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStmCore {
    /// A core with a default simulated device.
    pub fn new() -> Self {
        Self::with_device(DeviceConfig::default())
    }

    /// A core with an explicit device configuration.
    pub fn with_device(cfg: DeviceConfig) -> Self {
        BlockStmCore { device: Arc::new(Device::new(cfg)), last: BlockStmStats::default() }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Stats of the most recent batch.
    pub fn last_stats(&self) -> BlockStmStats {
        self.last
    }

    /// Execute one batch against `db` (mutating it through the tables'
    /// interior mutability) and report the outcome.
    pub fn execute(&mut self, db: &Database, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        self.device.reset();
        let lane_proc_overhead = self.device.cost().proc_overhead_cycles;
        let n = batch.len();

        // ---- Upload: transaction parameters only (no access sets — the
        // optimistic scheduler discovers them by executing). ----
        let h2d = self.device.h2d(batch.payload_bytes());

        let mut finalized = vec![false; n];
        let mut committed: Vec<Tid> = Vec::with_capacity(n);
        let mut aborted: Vec<Tid> = Vec::new();
        let mut stats = BlockStmStats { batch_len: n, ..BlockStmStats::default() };
        let mut remaining = n;
        let mut transfer = h2d;

        while remaining > 0 {
            stats.waves += 1;
            let active: Vec<(usize, usize)> =
                (0..n).filter(|&i| !finalized[i]).enumerate().collect();

            // ---- Optimistic execution: one lane per unfinalized txn,
            // all reading the same committed snapshot. ----
            let results: Vec<Result<TxnEffects, ExecError>> = {
                let slots: Vec<parking_lot::Mutex<Option<_>>> =
                    active.iter().map(|_| parking_lot::Mutex::new(None)).collect();
                self.device.launch("bstm_exec", &active, |lane, &(pos, i)| {
                    let txn = &batch.txns[i];
                    lane.branch(u32::from(txn.proc.0));
                    lane.charge_alu(txn.ops.len() as u32);
                    lane.charge_cycles(lane_proc_overhead);
                    lane.read_global_random(2 * txn.ops.len() as u32);
                    lane.write_global(txn.ops.len() as u32);
                    *slots[pos].lock() = Some(execute_speculative(db, txn));
                });
                slots.into_iter().map(|s| s.into_inner().expect("lane ran")).collect()
            };
            self.device.synchronize();

            // ---- Validation kernel: each lane rescans its read set
            // against the shared version table. ----
            self.device.launch("bstm_validate", &active, |lane, &(pos, _)| {
                let reads = match &results[pos] {
                    Ok(fx) => fx.reads.len() as u32,
                    Err(_) => 1,
                };
                lane.read_global(reads + 1);
                lane.charge_alu(reads);
            });
            self.device.synchronize();

            // ---- Host-mirrored greedy finalization in TID order. A txn
            // finalizes iff its execution is provably equivalent to serial
            // execution at its TID position:
            //   reads ∩ (wave_writes ∪ deferred_writes) = ∅  (it missed no
            //     earlier transaction's write), and
            //   writes ∩ deferred_reads = ∅  (it leaks no write to an
            //     earlier transaction's re-execution).
            // Deferred footprints come from declared access sets (exact
            // key supersets — declarable keys are constant-folded, so they
            // cannot change across re-executions). An undeclarable deferral
            // has an unknowable footprint and conservatively stops the
            // wave's finalization scan. ----
            let mut wave_writes: HashSet<Loc> = HashSet::new();
            let mut deferred_writes: HashSet<Loc> = HashSet::new();
            let mut deferred_reads: HashSet<Loc> = HashSet::new();
            let mut deferred_this_wave = 0u64;
            let mut unknown_deferred = false;
            let mut committed_this_wave: u32 = 0;
            let mut write_buf: Vec<Loc> = Vec::new();
            for &(pos, i) in &active {
                if unknown_deferred {
                    stats.deferrals += 1;
                    continue;
                }
                let txn = &batch.txns[i];
                let defer = |deferred_writes: &mut HashSet<Loc>,
                                 deferred_reads: &mut HashSet<Loc>,
                                 unknown: &mut bool| {
                    match (declared_write_locs(db, txn), declared_read_locs(db, txn)) {
                        (Some(w), Some(r)) => {
                            deferred_writes.extend(w);
                            deferred_reads.extend(r);
                        }
                        _ => *unknown = true,
                    }
                };
                match &results[pos] {
                    Ok(fx) => {
                        write_buf.clear();
                        write_locs(db, fx, &mut write_buf);
                        let invalid = fx.reads.iter().any(|r| {
                            let l = read_loc(r);
                            wave_writes.contains(&l) || deferred_writes.contains(&l)
                        }) || write_buf.iter().any(|l| deferred_reads.contains(l));
                        if invalid {
                            stats.deferrals += 1;
                            deferred_this_wave += 1;
                            defer(&mut deferred_writes, &mut deferred_reads, &mut unknown_deferred);
                        } else {
                            apply_effects(db, fx).expect("Block-STM apply");
                            wave_writes.extend(write_buf.iter().copied());
                            committed.push(txn.tid);
                            committed_this_wave += 1;
                            finalized[i] = true;
                            remaining -= 1;
                        }
                    }
                    Err(_) => {
                        // A user abort only stands if the snapshot it was
                        // decided on is exactly the serial prefix state —
                        // i.e. nothing finalized or deferred before it this
                        // wave. Otherwise re-run against fresher state.
                        if wave_writes.is_empty() && deferred_this_wave == 0 {
                            aborted.push(txn.tid);
                            finalized[i] = true;
                            remaining -= 1;
                        } else {
                            stats.deferrals += 1;
                            deferred_this_wave += 1;
                            defer(&mut deferred_writes, &mut deferred_reads, &mut unknown_deferred);
                        }
                    }
                }
            }

            // ---- Commit kernel: flush the finalized lanes' write buffers
            // to the versioned store. ----
            if committed_this_wave > 0 {
                self.device.launch_indexed("bstm_commit", committed_this_wave as usize, |lane| {
                    lane.write_global(2);
                    lane.charge_alu(1);
                });
            }
            self.device.synchronize();
        }

        // The committed list is the claimed equivalent serial order — TID
        // order, Block-STM's preset-order guarantee.
        committed.sort_unstable();

        // ---- Download results. ----
        let d2h = self.device.d2h(n as u64 * 8);
        transfer += d2h;
        let sim_ns = self.device.elapsed_ns();
        self.last = stats;

        BatchReport {
            committed,
            aborted,
            sim_ns,
            critical_path_ns: sim_ns,
            transfer_ns: transfer,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }

    /// Publish the last batch's scheduler internals (wave count, deferral
    /// counter) to `reg`.
    pub fn publish_stats(&self, reg: &Registry) {
        reg.histogram(names::BLOCKSTM_WAVES).record(self.last.waves as u64);
        reg.counter(names::BLOCKSTM_DEFERRALS).add(self.last.deferrals);
    }
}

/// The Block-STM engine: [`BlockStmCore`] plus an owned database.
pub struct BlockStmEngine {
    db: Database,
    core: BlockStmCore,
}

impl BlockStmEngine {
    /// Create an engine with a default simulated device.
    pub fn new(db: Database) -> Self {
        Self::with_device(db, DeviceConfig::default())
    }

    /// Create with an explicit device configuration.
    pub fn with_device(db: Database, cfg: DeviceConfig) -> Self {
        let core = BlockStmCore::with_device(cfg);
        core.device.register_allocation(db.bytes());
        BlockStmEngine { db, core }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        self.core.device()
    }

    /// Stats of the most recent batch.
    pub fn last_stats(&self) -> BlockStmStats {
        self.core.last_stats()
    }
}

impl BatchEngine for BlockStmEngine {
    fn name(&self) -> &'static str {
        "BlockSTM"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        self.core.execute(&self.db, batch)
    }

    fn record_telemetry(&self, registry: &Registry, report: &BatchReport) {
        let n = self.name();
        registry.counter(&format!("engine.{n}.batches")).inc();
        registry.counter(&format!("engine.{n}.committed")).add(report.committed.len() as u64);
        registry.counter(&format!("engine.{n}.abort_events")).add(report.aborted.len() as u64);
        registry.histogram(&format!("engine.{n}.batch_sim_ns")).record_ns(report.sim_ns);
        registry
            .histogram(&format!("engine.{n}.critical_path_ns"))
            .record_ns(report.critical_path_ns);
        self.core.publish_stats(registry);
    }
}

impl std::fmt::Debug for BlockStmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStmEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{execute_serial, ComputeFn, IrOp, ProcId, Src, TidGen};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(256).build());
        for k in 0..50 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    fn blind(t: TableId, k: i64, v: i64) -> Txn {
        Txn::new(
            ProcId(1),
            vec![],
            vec![IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Const(v) }],
        )
    }

    #[test]
    fn contended_rmw_chain_matches_serial_tid_order() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..40).map(|_| rmw(t, 7)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        let rid = engine.database().table(t).lookup(7).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 40);
        // Every RMW reads the previous writer's value: one deferral wave
        // per transaction past the first.
        assert_eq!(engine.last_stats().waves, 40);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn blind_writes_commit_in_one_wave() {
        let (db, t) = setup();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        // 40 blind writers of the same hot cell: nothing reads, nothing
        // defers — last TID wins, as TID-order serial execution demands.
        let batch =
            Batch::assemble(vec![], (0..40).map(|v| blind(t, 7, v)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        assert_eq!(engine.last_stats().waves, 1);
        assert_eq!(engine.last_stats().deferrals, 0);
        let rid = engine.database().table(t).lookup(7).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 39);
    }

    #[test]
    fn disjoint_batch_needs_one_wave() {
        let (db, t) = setup();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..40).map(|k| rmw(t, k as i64)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 40);
        assert_eq!(engine.last_stats().waves, 1);
    }

    #[test]
    fn mixed_contention_is_bit_identical_to_serial_execution() {
        let (db, t) = setup();
        let serial_db = db.deep_clone();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        // Readers, blind writers, RMWs, inserts (one duplicate) interleaved.
        let mut txns = Vec::new();
        for i in 0..30i64 {
            txns.push(match i % 4 {
                0 => rmw(t, 3),
                1 => blind(t, 3, i),
                2 => Txn::new(
                    ProcId(2),
                    vec![],
                    vec![IrOp::Read { table: t, key: Src::Const(3), col: ColId(0), out: 0 }],
                ),
                _ => Txn::new(
                    ProcId(3),
                    vec![],
                    vec![IrOp::Insert {
                        table: t,
                        key: Src::Const(100 + (i / 8)), // repeats → duplicate aborts
                        values: vec![Src::Const(i), Src::Const(0)],
                    }],
                ),
            });
        }
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        // Reference: serial execution in TID order.
        let mut serial_committed = 0;
        for txn in &batch.txns {
            if execute_serial(&serial_db, txn).is_ok() {
                serial_committed += 1;
            }
        }
        assert_eq!(report.committed.len(), serial_committed);
        assert_eq!(
            engine.database().state_digest(),
            serial_db.state_digest(),
            "Block-STM must be bit-identical to TID-order serial execution"
        );
    }

    #[test]
    fn duplicate_insert_is_the_only_abort() {
        let (db, t) = setup();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        let dup = Txn::new(
            ProcId(3),
            vec![],
            vec![IrOp::Insert { table: t, key: Src::Const(7), values: vec![Src::Const(1), Src::Const(2)] }],
        );
        let batch = Batch::assemble(vec![], vec![rmw(t, 1), dup], &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 1);
        assert_eq!(report.aborted.len(), 1);
    }

    #[test]
    fn telemetry_publishes_wave_and_deferral_signal() {
        let (db, t) = setup();
        let mut engine = BlockStmEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..8).map(|_| rmw(t, 7)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        let reg = Registry::new();
        engine.record_telemetry(&reg, &report);
        assert_eq!(reg.counter_value(names::BLOCKSTM_DEFERRALS), engine.last_stats().deferrals);
        assert!(engine.last_stats().deferral_frac() > 0.5);
    }
}
