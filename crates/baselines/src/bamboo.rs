//! Bamboo (Guo et al., SIGMOD 2021): reducing hotspot contention by
//! violating two-phase locking.
//!
//! Bamboo's core idea is that a transaction should **retire** its lock on a
//! hot record as soon as it has performed its last operation on it, letting
//! the next transaction in line proceed against the dirty (but final) value
//! instead of waiting for the full transaction to finish.
//!
//! This reproduction keeps that essence while avoiding deadlock machinery:
//! declared row locks are acquired in a global row order (deadlock-free, so
//! no wound/cascade path is ever taken), the transaction's serialization
//! point is fixed while all locks are held, writes apply row-by-row, and
//! the lock on a row classified **hot** is released immediately after that
//! row's writes are applied — everything else is held to the end, as strict
//! 2PL would. Real worker threads execute the batch; everything commits.
//!
//! Hot rows are detected per batch from declared access frequency (the
//! analogue of Bamboo's hotspot targeting). The simulated-time model shows
//! exactly the effect the paper measures: the serial chain through a hot
//! row costs one write-plus-release per transaction instead of one full
//! transaction body.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{execute_speculative_on, Mutation};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport, Tid};

use crate::cpu::{CpuCostModel, ParallelClock};

/// A FIFO row lock (writer-exclusive; readers share).
#[derive(Default)]
struct RowLock {
    state: Mutex<LockState>,
    cv: Condvar,
}

#[derive(Default)]
struct LockState {
    /// Number of shared holders.
    readers: u32,
    /// Exclusive holder present?
    writer: bool,
}

impl RowLock {
    fn lock(&self, write: bool) {
        let mut st = self.state.lock();
        if write {
            while st.writer || st.readers > 0 {
                self.cv.wait(&mut st);
            }
            st.writer = true;
        } else {
            while st.writer {
                self.cv.wait(&mut st);
            }
            st.readers += 1;
        }
    }

    fn unlock(&self, write: bool) {
        let mut st = self.state.lock();
        if write {
            st.writer = false;
        } else {
            st.readers -= 1;
        }
        self.cv.notify_all();
    }
}

/// The Bamboo engine.
pub struct BambooEngine {
    db: Database,
    cost: CpuCostModel,
    threads: usize,
    /// A row is hot if at least this many transactions of the batch
    /// declare access to it.
    hot_threshold: usize,
    /// Disable early release to get plain ordered 2PL (ablation).
    early_release: bool,
}

impl BambooEngine {
    /// Create an engine over `db` with early release enabled.
    pub fn new(db: Database) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        BambooEngine {
            db,
            cost: CpuCostModel::default(),
            threads,
            hot_threshold: 16,
            early_release: true,
        }
    }

    /// Toggle early release (plain 2PL when off).
    pub fn with_early_release(mut self, on: bool) -> Self {
        self.early_release = on;
        self
    }
}

impl BatchEngine for BambooEngine {
    fn name(&self) -> &'static str {
        "Bamboo"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let n = batch.len();

        // ---- Declared locks, strongest mode, global row order. ----
        // (row, write) per txn, sorted by row so acquisition is deadlock-free.
        let mut plans: Vec<Vec<((u16, i64), bool)>> = Vec::with_capacity(n);
        let mut freq: HashMap<(u16, i64), usize> = HashMap::new();
        for txn in &batch.txns {
            let acc =
                declared_accesses(txn).expect("Bamboo requires declarable transactions");
            let mut modes: Vec<((u16, i64), bool)> = Vec::new();
            for (t, k) in &acc.reads {
                if !modes.iter().any(|(row, _)| *row == (t.0, *k)) {
                    modes.push(((t.0, *k), false));
                }
            }
            for (t, k) in acc.all_writes() {
                match modes.iter_mut().find(|(row, _)| *row == (t.0, k)) {
                    Some((_, w)) => *w = true,
                    None => modes.push(((t.0, k), true)),
                }
            }
            modes.sort_unstable_by_key(|(row, _)| *row);
            for (row, _) in &modes {
                *freq.entry(*row).or_default() += 1;
            }
            plans.push(modes);
        }
        let hot: std::collections::HashSet<(u16, i64)> = freq
            .iter()
            .filter(|(_, &c)| c >= self.hot_threshold)
            .map(|(row, _)| *row)
            .collect();

        // One lock object per distinct row in the batch.
        let locks: HashMap<(u16, i64), RowLock> =
            freq.keys().map(|&row| (row, RowLock::default())).collect();

        // ---- Threaded execution. ----
        let seq = AtomicU64::new(0);
        let commit_seq: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let threads = self.threads.min(n.max(1));
        crossbeam::scope(|s| {
            for th in 0..threads {
                let db = &self.db;
                let plans = &plans;
                let locks = &locks;
                let hot = &hot;
                let batch = &batch;
                let seq = &seq;
                let commit_seq = &commit_seq;
                let early = self.early_release;
                s.spawn(move |_| {
                    let mut i = th;
                    while i < n {
                        let txn = &batch.txns[i];
                        for (row, write) in &plans[i] {
                            locks[row].lock(*write);
                        }
                        // Serialization point: all locks held.
                        commit_seq[i].store(seq.fetch_add(1, Ordering::AcqRel), Ordering::Release);
                        // Reads under locks see a state consistent with the
                        // serialization order; buffered execution then
                        // row-ordered apply.
                        let fx = execute_speculative_on(db, txn);
                        match fx {
                            Ok(fx) => {
                                // Apply writes grouped by row, in the same
                                // global row order as acquisition; retire
                                // hot rows as soon as their writes land.
                                let mut released: Vec<(u16, i64)> = Vec::new();
                                for (row, write) in &plans[i] {
                                    if !*write {
                                        continue;
                                    }
                                    for m in &fx.mutations {
                                        let (mt, mk) = match m {
                                            Mutation::Update { table, key, .. }
                                            | Mutation::Add { table, key, .. }
                                            | Mutation::Insert { table, key, .. }
                                            | Mutation::Delete { table, key } => (table.0, *key),
                                        };
                                        if (mt, mk) != *row {
                                            continue;
                                        }
                                        apply_one(db, m);
                                    }
                                    if early && hot.contains(row) {
                                        locks[row].unlock(true);
                                        released.push(*row);
                                    }
                                }
                                for (row, write) in &plans[i] {
                                    if !released.contains(row) {
                                        locks[row].unlock(*write);
                                    }
                                }
                            }
                            Err(_) => {
                                // User abort: release everything untouched.
                                for (row, write) in &plans[i] {
                                    locks[row].unlock(*write);
                                }
                                commit_seq[i].store(u64::MAX, Ordering::Release);
                            }
                        }
                        i += threads;
                    }
                });
            }
        })
        .expect("Bamboo worker panicked");

        // ---- Simulated time: parallel work + hot-row serial chains. ----
        let mut clock = ParallelClock::new(self.cost.workers);
        for (i, txn) in batch.txns.iter().enumerate() {
            // Bamboo's code path is lean (no validation, no versioning,
            // inlined lock words): a quarter of the generic interpreter
            // cost per op — calibrated against its Table II numbers,
            // which beat every other CPU system.
            clock.assign(
                txn.ops.len() as f64 * 0.25 * (self.cost.index_ns + self.cost.read_ns)
                    + plans[i].len() as f64 * self.cost.lock_ns,
            );
        }
        // Each hot row is a serial chain; its per-holder cost is one write
        // plus a lock handoff (early release) or a whole transaction body
        // (plain 2PL).
        let mut chain_ns = 0.0f64;
        for (row, &count) in freq.iter().filter(|(row, _)| hot.contains(*row)) {
            let _ = row;
            let per_holder = if self.early_release {
                self.cost.write_ns + self.cost.lock_ns
            } else {
                // Approximate full-body hold time.
                12.0 * (self.cost.index_ns + self.cost.read_ns)
            };
            chain_ns = chain_ns.max(count as f64 * per_holder);
        }
        clock.serial(chain_ns);

        let mut order: Vec<(u64, Tid)> = Vec::new();
        let mut aborted = Vec::new();
        for (i, txn) in batch.txns.iter().enumerate() {
            match commit_seq[i].load(Ordering::Acquire) {
                u64::MAX => aborted.push(txn.tid),
                s => order.push((s, txn.tid)),
            }
        }
        order.sort_unstable();
        BatchReport {
            committed: order.into_iter().map(|(_, tid)| tid).collect(),
            aborted,
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

fn apply_one(db: &Database, m: &Mutation) {
    match m {
        Mutation::Update { table, key, col, value } => {
            let t = db.table(*table);
            if let Some(rid) = t.lookup(*key) {
                t.set(rid, *col, *value);
            }
        }
        Mutation::Add { table, key, col, delta } => {
            let t = db.table(*table);
            if let Some(rid) = t.lookup(*key) {
                t.add(rid, *col, *delta);
            }
        }
        Mutation::Insert { table, key, values } => {
            db.table(*table).insert(*key, values).expect("Bamboo insert (unique keys)");
        }
        Mutation::Delete { table, key } => {
            db.table(*table).delete(*key);
        }
    }
}

impl std::fmt::Debug for BambooEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BambooEngine")
            .field("threads", &self.threads)
            .field("early_release", &self.early_release)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(1024).build());
        for k in 0..32 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn hot_add(t: TableId) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Add { table: t, key: Src::Const(0), col: ColId(0), delta: Src::Const(1) }],
        )
    }

    #[test]
    fn hotspot_adds_all_commit_exactly_once() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BambooEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..200).map(|_| hot_add(t)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 200);
        let rid = engine.database().table(t).lookup(0).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 200);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn rmw_dataflow_respects_serialization_order() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BambooEngine::new(db);
        let mut gen = TidGen::new();
        let txns: Vec<Txn> = (0..100)
            .map(|i| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![
                        IrOp::Read { table: t, key: Src::Const(i % 3), col: ColId(0), out: 0 },
                        IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                        IrOp::Update { table: t, key: Src::Const(i % 3), col: ColId(0), val: Src::Reg(0) },
                    ],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 100);
        let total: i64 = (0..3)
            .map(|k| {
                let rid = engine.database().table(t).lookup(k).unwrap();
                engine.database().table(t).get(rid, ColId(0))
            })
            .sum();
        assert_eq!(total, 100);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn early_release_makes_hot_chain_cheaper_in_sim_time() {
        let mk = |early: bool| {
            let (db, t) = setup();
            let mut engine = BambooEngine::new(db).with_early_release(early);
            let mut gen = TidGen::new();
            let batch =
                Batch::assemble(vec![], (0..500).map(|_| hot_add(t)).collect(), &mut gen);
            engine.execute_batch(&batch).sim_ns
        };
        assert!(mk(true) < mk(false), "early release must shorten the hot chain");
    }
}
