//! BOHM (Faleiro & Abadi, VLDB 2015): deterministic MVCC in two steps.
//!
//! **Step 1 (concurrency control)** — the key space is hash-partitioned
//! across CC threads; *every* CC thread scans the whole batch in TID order
//! and inserts a placeholder version (tagged with the writer's TID) for
//! each declared write that falls in its partition. This whole-batch scan
//! per partition is BOHM's documented bottleneck and is charged as such.
//!
//! **Step 2 (execution)** — transactions execute reading, for every key,
//! the version with the largest TID below their own (falling back to the
//! pre-batch table), and fill their own placeholders with the produced
//! rows. A read landing on an unfilled placeholder is a data dependency;
//! the scheduler defers the reader until the writer has filled it. Every
//! transaction commits; the equivalent serial order is TID order.
//!
//! At batch end the newest filled version of each key migrates into the
//! base table, and in-batch inserts (always fresh keys in our workloads)
//! are applied.

use std::collections::HashMap;
use std::time::Instant;

use ltpg_storage::mvcc::VisibleRead;
use ltpg_storage::{ColId, Database, MultiVersionStore, TableId};
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{execute_speculative_on, CellStore, Mutation};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport, DeclaredAccess};

use crate::cpu::{CpuCostModel, ParallelClock};

/// Calibrated per-transaction framework overhead (allocation, GC pressure
/// and coordination of the original codebase, which Table II shows running
/// at only 0.01–0.12 M TPS). See EXPERIMENTS.md for the calibration note.
const BOHM_FRAMEWORK_OVERHEAD_NS: f64 = 380_000.0;

/// A [`CellStore`] view of (multi-version store over base table) at a
/// given reader TID.
struct MvccView<'a> {
    mvcc: &'a MultiVersionStore,
    base: &'a Database,
    inserts: &'a HashMap<(u16, i64), (u64, Vec<i64>)>,
    reader_tid: u64,
}

impl CellStore for MvccView<'_> {
    fn cell(&self, table: TableId, key: i64, col: ColId) -> Option<i64> {
        match self.mvcc.read_visible(table, key, self.reader_tid) {
            VisibleRead::Filled(_, row) => Some(row[col.idx()]),
            VisibleRead::Pending(tid) => {
                panic!("BOHM scheduler bug: read of unfilled placeholder (writer tid {tid})")
            }
            VisibleRead::Base => {
                if let Some((itid, row)) = self.inserts.get(&(table.0, key)) {
                    if *itid < self.reader_tid {
                        return Some(row[col.idx()]);
                    }
                    return None;
                }
                self.base.cell(table, key, col)
            }
        }
    }

    fn row_exists(&self, table: TableId, key: i64) -> bool {
        match self.mvcc.read_visible(table, key, self.reader_tid) {
            VisibleRead::Filled(..) | VisibleRead::Pending(_) => true,
            VisibleRead::Base => {
                if let Some((itid, _)) = self.inserts.get(&(table.0, key)) {
                    return *itid < self.reader_tid;
                }
                self.base.row_exists(table, key)
            }
        }
    }

    fn row_width(&self, table: TableId) -> usize {
        self.base.row_width(table)
    }
}

/// The BOHM engine.
pub struct BohmEngine {
    db: Database,
    mvcc: MultiVersionStore,
    cost: CpuCostModel,
}

impl BohmEngine {
    /// Create an engine over `db`.
    pub fn new(db: Database) -> Self {
        BohmEngine { db, mvcc: MultiVersionStore::new(), cost: CpuCostModel::default() }
    }

    /// A key's CC partition.
    fn partition(&self, key: i64) -> usize {
        (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize % self.cost.workers
    }
}

impl BatchEngine for BohmEngine {
    fn name(&self) -> &'static str {
        "BOHM"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let mut clock = ParallelClock::new(self.cost.workers);
        let n = batch.len();
        self.mvcc.clear();

        // ---- Declared sets (needed by both steps). ----
        let declared: Vec<DeclaredAccess> = batch
            .txns
            .iter()
            .map(|t| declared_accesses(t).expect("BOHM requires declarable transactions"))
            .collect();

        // ---- Step 1: partitioned placeholder insertion. ----
        // Every partition scans the whole batch (charged per partition);
        // sequential insertion here is equivalent because partitions are
        // disjoint and each processes TIDs in order.
        let mut declared_inserts: HashMap<(u16, i64), u64> = HashMap::new();
        for (i, txn) in batch.txns.iter().enumerate() {
            for (t, k) in &declared[i].writes {
                self.mvcc.insert_placeholder(*t, *k, txn.tid.0);
            }
            for (t, k) in &declared[i].inserts {
                declared_inserts.entry((t.0, *k)).or_insert(txn.tid.0);
            }
        }
        for p in 0..self.cost.workers {
            // Whole-batch scan plus this partition's version inserts.
            let mine = (0..n)
                .flat_map(|i| declared[i].writes.iter())
                .filter(|(_, k)| self.partition(*k) == p)
                .count();
            clock.assign_to(p, n as f64 * 40.0 + mine as f64 * self.cost.version_ns);
        }
        clock.serial(self.cost.barrier_ns);

        // ---- Step 2: dependency-resolved execution. ----
        let mut executed = vec![false; n];
        let mut inserts_done: HashMap<(u16, i64), (u64, Vec<i64>)> = HashMap::new();
        let mut remaining = n;
        let mut aborted_user = Vec::new();
        while remaining > 0 {
            let mut progressed = false;
            for i in 0..n {
                if executed[i] {
                    continue;
                }
                let txn = &batch.txns[i];
                let tid = txn.tid.0;
                // Ready when every row we read or rewrite has a resolved
                // visible version, and no smaller-TID declared inserter of
                // a row we probe is still pending.
                let ready = declared[i]
                    .reads
                    .iter()
                    .chain(declared[i].writes.iter())
                    .all(|(t, k)| {
                        match self.mvcc.read_visible(*t, *k, tid) {
                            VisibleRead::Pending(_) => false,
                            _ => match declared_inserts.get(&(t.0, *k)) {
                                Some(&itid) if itid < tid => {
                                    inserts_done.contains_key(&(t.0, *k))
                                }
                                _ => true,
                            },
                        }
                    });
                if !ready {
                    continue;
                }
                let view = MvccView {
                    mvcc: &self.mvcc,
                    base: &self.db,
                    inserts: &inserts_done,
                    reader_tid: tid,
                };
                let mut ns = txn.ops.len() as f64
                    * (self.cost.alu_ns + self.cost.version_ns + self.cost.read_ns)
                    + BOHM_FRAMEWORK_OVERHEAD_NS;
                match execute_speculative_on(&view, txn) {
                    Err(_) => {
                        // User abort: retract our placeholders so readers
                        // fall through to older versions.
                        for (t, k) in &declared[i].writes {
                            self.mvcc.retract(*t, *k, tid);
                        }
                        aborted_user.push(txn.tid);
                        ns += self.cost.abort_ns;
                    }
                    Ok(fx) => {
                        // Fill our placeholders: visible base row + our
                        // cell writes, one full row per written key.
                        let mut new_rows: HashMap<(u16, i64), Vec<i64>> = HashMap::new();
                        let mut my_inserts: Vec<((u16, i64), Vec<i64>)> = Vec::new();
                        for m in &fx.mutations {
                            match m {
                                Mutation::Update { table, key, col, value } => {
                                    let row = new_rows.entry((table.0, *key)).or_insert_with(|| {
                                        (0..view.row_width(*table))
                                            .map(|c| {
                                                view.cell(*table, *key, ColId(c as u16)).unwrap_or(0)
                                            })
                                            .collect()
                                    });
                                    row[col.idx()] = *value;
                                }
                                Mutation::Add { table, key, col, delta } => {
                                    let row = new_rows.entry((table.0, *key)).or_insert_with(|| {
                                        (0..view.row_width(*table))
                                            .map(|c| {
                                                view.cell(*table, *key, ColId(c as u16)).unwrap_or(0)
                                            })
                                            .collect()
                                    });
                                    row[col.idx()] = row[col.idx()].wrapping_add(*delta);
                                }
                                Mutation::Insert { table, key, values } => {
                                    my_inserts.push(((table.0, *key), values.clone()));
                                }
                                Mutation::Delete { .. } => {
                                    unimplemented!("BOHM reproduction does not support deletes")
                                }
                            }
                            ns += self.cost.version_ns;
                        }
                        for ((t, k), row) in new_rows {
                            self.mvcc.fill(TableId(t), k, tid, row);
                        }
                        for (key, values) in my_inserts {
                            inserts_done.insert(key, (tid, values));
                        }
                        // A writer that produced no row for a declared
                        // write (e.g. write skipped on a missing key) must
                        // retract so readers do not dangle.
                        for (t, k) in &declared[i].writes {
                            if matches!(self.mvcc.read_visible(*t, *k, tid + 1), VisibleRead::Pending(p) if p == tid)
                            {
                                self.mvcc.retract(*t, *k, tid);
                            }
                        }
                    }
                }
                clock.assign(ns);
                executed[i] = true;
                remaining -= 1;
                progressed = true;
            }
            assert!(progressed, "BOHM dependency cycle — impossible under TID-ordered versions");
        }
        clock.serial(self.cost.barrier_ns);

        // ---- Merge newest versions + inserts into the base table. ----
        for (t, k) in self.mvcc.keys() {
            if let Some((_, row)) = self.mvcc.newest_filled(t, k) {
                let table = self.db.table(t);
                if let Some(rid) = table.lookup(k) {
                    for (c, v) in row.iter().enumerate() {
                        table.set(rid, ColId(c as u16), *v);
                    }
                }
                clock.assign(self.cost.write_ns * row.len() as f64);
            }
        }
        type PendingInsert<'a> = (&'a (u16, i64), &'a (u64, Vec<i64>));
        let mut pending_inserts: Vec<PendingInsert<'_>> = inserts_done.iter().collect();
        pending_inserts.sort_by_key(|(k, _)| **k);
        for ((t, k), (_, row)) in pending_inserts {
            self.db
                .table(TableId(*t))
                .insert(*k, row)
                .expect("BOHM insert merge (keys are unique by construction)");
        }

        let committed: Vec<_> = batch
            .txns
            .iter()
            .map(|t| t.tid)
            .filter(|tid| !aborted_user.contains(tid))
            .collect();
        BatchReport {
            committed,
            aborted: aborted_user,
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for BohmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BohmEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::TableBuilder;
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(128).build());
        for k in 0..20 {
            db.table(t).insert(k, &[k * 10, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    #[test]
    fn rmw_chain_resolves_through_version_dependencies() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BohmEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..15).map(|_| rmw(t, 5)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 15);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
        let rid = engine.database().table(t).lookup(5).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 50 + 15);
    }

    #[test]
    fn reader_between_writers_sees_tid_order_value() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BohmEngine::new(db);
        let mut gen = TidGen::new();
        // tid1 writes a=111; tid2 copies a into b of row 7; tid3 writes a=333.
        let txns = vec![
            Txn::new(ProcId(0), vec![], vec![IrOp::Update { table: t, key: Src::Const(3), col: ColId(0), val: Src::Const(111) }]),
            Txn::new(
                ProcId(0),
                vec![],
                vec![
                    IrOp::Read { table: t, key: Src::Const(3), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(7), col: ColId(1), val: Src::Reg(0) },
                ],
            ),
            Txn::new(ProcId(0), vec![], vec![IrOp::Update { table: t, key: Src::Const(3), col: ColId(0), val: Src::Const(333) }]),
        ];
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 3);
        let db = engine.database();
        let r7 = db.table(t).lookup(7).unwrap();
        assert_eq!(db.table(t).get(r7, ColId(1)), 111, "tid2 must see tid1's write, not tid3's");
        let r3 = db.table(t).lookup(3).unwrap();
        assert_eq!(db.table(t).get(r3, ColId(0)), 333, "newest version migrates");
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, db).unwrap();
    }

    #[test]
    fn in_batch_insert_visible_to_later_readers_only() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = BohmEngine::new(db);
        let mut gen = TidGen::new();
        let txns = vec![
            // tid1 reads missing key 100 (sees nothing).
            Txn::new(
                ProcId(0),
                vec![],
                vec![
                    IrOp::Read { table: t, key: Src::Const(100), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(1), col: ColId(1), val: Src::Reg(0) },
                ],
            ),
            // tid2 inserts key 100.
            Txn::new(ProcId(0), vec![], vec![IrOp::Insert { table: t, key: Src::Const(100), values: vec![Src::Const(777), Src::Const(0)] }]),
            // tid3 reads key 100 (must see 777).
            Txn::new(
                ProcId(0),
                vec![],
                vec![
                    IrOp::Read { table: t, key: Src::Const(100), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(2), col: ColId(1), val: Src::Reg(0) },
                ],
            ),
        ];
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 3);
        let db = engine.database();
        let r1 = db.table(t).lookup(1).unwrap();
        let r2 = db.table(t).lookup(2).unwrap();
        assert_eq!(db.table(t).get(r1, ColId(1)), 0);
        assert_eq!(db.table(t).get(r2, ColId(1)), 777);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, db).unwrap();
    }
}
