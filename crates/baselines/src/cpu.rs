//! The calibrated cost model and worker-pool clock for the CPU engines.
//!
//! As with the GPU cost model, every constant here was tuned once against
//! the magnitudes of the paper's Table II (Xeon Gold 6326, 30 scheduled
//! cores) and is held fixed across all engines and experiments. The model
//! converts counted events (index probes, reads, writes, lock-manager
//! operations, ...) into simulated nanoseconds; parallel sections are
//! scheduled onto a fixed worker pool by a greedy least-loaded rule and
//! take the pool's makespan.

/// Per-event costs in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCostModel {
    /// Worker threads (the paper schedules 30 cores).
    pub workers: usize,
    /// Hash-index probe.
    pub index_ns: f64,
    /// Cell read (cache-missing random access, amortized).
    pub read_ns: f64,
    /// Cell write.
    pub write_ns: f64,
    /// Pure ALU op.
    pub alu_ns: f64,
    /// One lock-manager operation (acquire/release/queue maintenance).
    pub lock_ns: f64,
    /// OCC validation step per read-set entry.
    pub validate_ns: f64,
    /// Multi-version store operation (placeholder insert / version read).
    pub version_ns: f64,
    /// Abort-and-retry bookkeeping per aborted attempt.
    pub abort_ns: f64,
    /// Per-batch coordination barrier (deterministic engines synchronize
    /// phases across the pool).
    pub barrier_ns: f64,
    /// Serial cost per position in a hot-row RMW chain under
    /// nondeterministic CC (cache-line ping-pong + retry on a contended
    /// row across cores). Drives DBx1000's Table II degradation at small
    /// warehouse counts.
    pub hot_rmw_ns: f64,
}

impl CpuCostModel {
    /// Calibration targeting the paper's 30-core Xeon numbers.
    pub fn xeon30() -> Self {
        CpuCostModel {
            workers: 30,
            index_ns: 110.0,
            read_ns: 45.0,
            write_ns: 65.0,
            alu_ns: 2.0,
            lock_ns: 90.0,
            validate_ns: 60.0,
            version_ns: 140.0,
            abort_ns: 250.0,
            barrier_ns: 4_000.0,
            hot_rmw_ns: 1_200.0,
        }
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        Self::xeon30()
    }
}

/// A pool of simulated workers. Tasks are placed on the least-loaded
/// worker; `makespan()` is the pool's finish time. `serial()` adds
/// non-parallelizable time (e.g. Calvin's single-threaded lock manager)
/// that delays everything.
#[derive(Debug, Clone)]
pub struct ParallelClock {
    workers: Vec<f64>,
    serial_ns: f64,
}

impl ParallelClock {
    /// A pool of `n` idle workers.
    pub fn new(n: usize) -> Self {
        ParallelClock { workers: vec![0.0; n.max(1)], serial_ns: 0.0 }
    }

    /// Place a task of `ns` on the least-loaded worker.
    pub fn assign(&mut self, ns: f64) {
        let (i, _) = self
            .workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .expect("non-empty pool");
        self.workers[i] += ns;
    }

    /// Place a task on a *specific* worker (engines with static
    /// partition-to-worker mappings, e.g. PWV).
    pub fn assign_to(&mut self, worker: usize, ns: f64) {
        let n = self.workers.len();
        self.workers[worker % n] += ns;
    }

    /// Add serial (non-parallelizable) time.
    pub fn serial(&mut self, ns: f64) {
        self.serial_ns += ns;
    }

    /// Pool finish time: serial portion plus the busiest worker.
    pub fn makespan_ns(&self) -> f64 {
        self.serial_ns + self.workers.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of all assigned work (utilization diagnostics).
    pub fn total_work_ns(&self) -> f64 {
        self.workers.iter().sum::<f64>() + self.serial_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_balances() {
        let mut c = ParallelClock::new(4);
        for _ in 0..8 {
            c.assign(10.0);
        }
        assert!((c.makespan_ns() - 20.0).abs() < 1e-9);
        c.assign(100.0);
        assert!((c.makespan_ns() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn serial_time_delays_everything() {
        let mut c = ParallelClock::new(2);
        c.assign(10.0);
        c.serial(100.0);
        assert!((c.makespan_ns() - 110.0).abs() < 1e-9);
        assert!((c.total_work_ns() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn single_worker_pool_is_serial() {
        let mut c = ParallelClock::new(1);
        c.assign(5.0);
        c.assign(5.0);
        assert!((c.makespan_ns() - 10.0).abs() < 1e-9);
    }
}
