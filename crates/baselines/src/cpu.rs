//! The calibrated cost model and worker-pool clock for the CPU engines.
//!
//! As with the GPU cost model, every constant here was tuned once against
//! the magnitudes of the paper's Table II (Xeon Gold 6326, 30 scheduled
//! cores) and is held fixed across all engines and experiments. The model
//! converts counted events (index probes, reads, writes, lock-manager
//! operations, ...) into simulated nanoseconds; parallel sections are
//! scheduled onto a fixed worker pool by a greedy least-loaded rule and
//! take the pool's makespan.

/// Per-event costs in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCostModel {
    /// Worker threads (the paper schedules 30 cores).
    pub workers: usize,
    /// Hash-index probe.
    pub index_ns: f64,
    /// Cell read (cache-missing random access, amortized).
    pub read_ns: f64,
    /// Cell write.
    pub write_ns: f64,
    /// Pure ALU op.
    pub alu_ns: f64,
    /// One lock-manager operation (acquire/release/queue maintenance).
    pub lock_ns: f64,
    /// OCC validation step per read-set entry.
    pub validate_ns: f64,
    /// Multi-version store operation (placeholder insert / version read).
    pub version_ns: f64,
    /// Abort-and-retry bookkeeping per aborted attempt.
    pub abort_ns: f64,
    /// Per-batch coordination barrier (deterministic engines synchronize
    /// phases across the pool).
    pub barrier_ns: f64,
    /// Serial cost per position in a hot-row RMW chain under
    /// nondeterministic CC (cache-line ping-pong + retry on a contended
    /// row across cores). Drives DBx1000's Table II degradation at small
    /// warehouse counts.
    pub hot_rmw_ns: f64,
}

impl CpuCostModel {
    /// Calibration targeting the paper's 30-core Xeon numbers.
    pub fn xeon30() -> Self {
        CpuCostModel {
            workers: 30,
            index_ns: 110.0,
            read_ns: 45.0,
            write_ns: 65.0,
            alu_ns: 2.0,
            lock_ns: 90.0,
            validate_ns: 60.0,
            version_ns: 140.0,
            abort_ns: 250.0,
            barrier_ns: 4_000.0,
            hot_rmw_ns: 1_200.0,
        }
    }
}

impl Default for CpuCostModel {
    fn default() -> Self {
        Self::xeon30()
    }
}

/// A pool of simulated workers. Tasks are placed on the least-loaded
/// worker; `makespan()` is the pool's finish time. `serial()` adds
/// non-parallelizable time (e.g. Calvin's single-threaded lock manager)
/// that delays everything.
#[derive(Debug, Clone)]
pub struct ParallelClock {
    workers: Vec<f64>,
    serial_ns: f64,
}

impl ParallelClock {
    /// A pool of `n` idle workers.
    pub fn new(n: usize) -> Self {
        ParallelClock { workers: vec![0.0; n.max(1)], serial_ns: 0.0 }
    }

    /// Place a task of `ns` on the least-loaded worker.
    pub fn assign(&mut self, ns: f64) {
        let (i, _) = self
            .workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .expect("non-empty pool");
        self.workers[i] += ns;
    }

    /// Place a task on a *specific* worker (engines with static
    /// partition-to-worker mappings, e.g. PWV).
    pub fn assign_to(&mut self, worker: usize, ns: f64) {
        let n = self.workers.len();
        self.workers[worker % n] += ns;
    }

    /// Add serial (non-parallelizable) time.
    pub fn serial(&mut self, ns: f64) {
        self.serial_ns += ns;
    }

    /// Pool finish time: serial portion plus the busiest worker.
    pub fn makespan_ns(&self) -> f64 {
        self.serial_ns + self.workers.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of all assigned work (utilization diagnostics).
    pub fn total_work_ns(&self) -> f64 {
        self.workers.iter().sum::<f64>() + self.serial_ns
    }
}

/// The deterministic CPU twin of the LTPG engine.
///
/// When the (simulated) device is lost, `LtpgServer` drains the remaining
/// workload here. The twin re-implements LTPG's three phases serially —
/// speculative execution against the pre-batch snapshot, min-TID conflict
/// detection, and write-back with delayed-update merging — with **exact**
/// `BTreeMap` min-TID cells where the GPU uses hashed conflict-log
/// buckets. Commit decisions are therefore bit-identical to the GPU
/// engine's, with one documented exception: the GPU conflict log can run
/// out of buckets (or collide on its 40-bit key tags) under extreme load
/// and force-abort transactions the exact maps would admit. Workloads
/// below that capacity (all of this repository's) decide identically.
pub mod fallback {
    use std::collections::{BTreeMap, HashMap, HashSet};
    use std::time::Instant;

    use ltpg_storage::{
        membership_partition, ColId, Database, TableError, TableId, MEMBERSHIP_PARTITION_SHIFT,
    };
    use ltpg_txn::engine::CommitSemantics;
    use ltpg_txn::exec::{execute_speculative, Mutation, TxnEffects};
    use ltpg_txn::{Batch, BatchEngine, BatchReport};

    use super::CpuCostModel;

    /// `(row key, column)` → conflict-cell key, identical to the GPU
    /// engine's encoding: column code 0 is the row-existence pseudo-cell,
    /// column `c` maps to `c + 1`.
    #[inline]
    fn cell_key(key: i64, col: Option<ColId>) -> i64 {
        key.wrapping_mul(64).wrapping_add(col.map_or(0, |c| i64::from(c.0) + 1))
    }

    const WAW: u32 = 1 << 0;
    const RAW: u32 = 1 << 1;
    const WAR: u32 = 1 << 2;
    const USER: u32 = 1 << 3;
    const FORCED: u32 = 1 << 4;

    /// The slice of `LtpgConfig` the commit decision depends on. Kept as
    /// its own struct so this crate does not depend on `ltpg` (which
    /// depends on this crate).
    #[derive(Debug, Clone, Default)]
    pub struct CpuFallbackConfig {
        /// Columns always maintained commutatively.
        pub commutative_cols: HashSet<(TableId, ColId)>,
        /// Hot columns covered by delayed update when that flag is on.
        pub delayed_cols: HashSet<(TableId, ColId)>,
        /// Whether the delayed-update optimization is enabled.
        pub delayed_update: bool,
        /// Whether the commit rule uses logical reordering
        /// (¬WAW ∧ (¬RAW ∨ ¬WAR) instead of ¬WAW ∧ ¬RAW).
        pub logical_reordering: bool,
    }

    impl CpuFallbackConfig {
        fn is_commutative(&self, table: TableId, col: ColId) -> bool {
            self.commutative_cols.contains(&(table, col))
                || (self.delayed_update && self.delayed_cols.contains(&(table, col)))
        }
    }

    /// One conflict-check item of the detect phase:
    /// (table, column, cell key, check WAW?, membership partition).
    type WriteItem = (TableId, Option<ColId>, i64, bool, Option<i64>);

    /// Per-transaction result of the serial execute phase.
    struct ExecOutcome {
        normal: Vec<Mutation>,
        delayed: Vec<(TableId, ColId, i64, i64)>,
        effects: TxnEffects,
    }

    /// Exact min-TID maps standing in for the GPU conflict log.
    #[derive(Default)]
    struct MinTidLog {
        read_min: BTreeMap<(TableId, Option<ColId>, i64), u64>,
        write_min: BTreeMap<(TableId, Option<ColId>, i64), u64>,
        mem_read_min: BTreeMap<(TableId, i64), u64>,
        mem_write_min: BTreeMap<(TableId, i64), u64>,
    }

    impl MinTidLog {
        fn note(map: &mut BTreeMap<(TableId, Option<ColId>, i64), u64>, k: (TableId, Option<ColId>, i64), tid: u64) {
            map.entry(k).and_modify(|m| *m = (*m).min(tid)).or_insert(tid);
        }
        fn note_mem(map: &mut BTreeMap<(TableId, i64), u64>, k: (TableId, i64), tid: u64) {
            map.entry(k).and_modify(|m| *m = (*m).min(tid)).or_insert(tid);
        }
    }

    /// Serial CPU executor producing LTPG-identical commit decisions.
    pub struct CpuFallbackEngine {
        db: Database,
        cfg: CpuFallbackConfig,
        cost: CpuCostModel,
        /// Tables containing at least one commutatively-maintained column
        /// (union of both column sets, independent of the flag — mirrors
        /// the GPU engine's delete force-abort rule).
        commutative_tables: HashSet<TableId>,
    }

    impl CpuFallbackEngine {
        /// Create a fallback engine over `db`.
        pub fn new(db: Database, cfg: CpuFallbackConfig) -> Self {
            let commutative_tables = cfg
                .commutative_cols
                .iter()
                .chain(cfg.delayed_cols.iter())
                .map(|&(t, _)| t)
                .collect();
            CpuFallbackEngine { db, cfg, cost: CpuCostModel::xeon30(), commutative_tables }
        }

        /// Consume the engine, returning the final database.
        pub fn into_database(self) -> Database {
            self.db
        }

        fn run_batch(&mut self, batch: &Batch) -> BatchReport {
            let wall_start = Instant::now();
            let n = batch.len();
            let mut flags = vec![0u32; n];
            let mut outcomes: Vec<Option<ExecOutcome>> = Vec::with_capacity(n);
            let mut log = MinTidLog::default();
            let mut work_ops = 0u64;

            // ---- Phase 1: speculative execution + min-TID registration,
            // serially per transaction against the pre-batch snapshot. ----
            for (idx, txn) in batch.txns.iter().enumerate() {
                work_ops += txn.ops.len() as u64;
                let fx = match execute_speculative(&self.db, txn) {
                    Err(_) => {
                        flags[idx] |= USER;
                        outcomes.push(None);
                        continue;
                    }
                    Ok(fx) => fx,
                };
                let tid = txn.tid.0;
                let mut forced = false;
                let mut normal = Vec::with_capacity(fx.mutations.len());
                let mut delayed = Vec::new();
                for m in &fx.mutations {
                    match m {
                        Mutation::Add { table, key, col, delta }
                            if self.cfg.is_commutative(*table, *col) =>
                        {
                            delayed.push((*table, *col, *key, *delta));
                        }
                        Mutation::Update { table, col, .. }
                            if self.cfg.is_commutative(*table, *col) =>
                        {
                            forced = true;
                        }
                        Mutation::Delete { table, .. }
                            if self.commutative_tables.contains(table) =>
                        {
                            forced = true;
                        }
                        other => normal.push(other.clone()),
                    }
                }
                for r in &fx.reads {
                    if let Some(c) = r.col {
                        if self.cfg.is_commutative(r.table, c) {
                            forced = true;
                        }
                    }
                }
                if forced {
                    flags[idx] |= FORCED;
                    outcomes.push(Some(ExecOutcome {
                        normal: Vec::new(),
                        delayed: Vec::new(),
                        effects: fx,
                    }));
                    continue;
                }
                for r in &fx.reads {
                    match membership_partition(r.key) {
                        Some(p) => MinTidLog::note_mem(&mut log.mem_read_min, (r.table, p), tid),
                        None => MinTidLog::note(
                            &mut log.read_min,
                            (r.table, r.col, cell_key(r.key, r.col)),
                            tid,
                        ),
                    }
                }
                for m in &normal {
                    match m {
                        Mutation::Update { table, key, col, .. } => MinTidLog::note(
                            &mut log.write_min,
                            (*table, Some(*col), cell_key(*key, Some(*col))),
                            tid,
                        ),
                        // A non-commutative Add is a read-modify-write: it
                        // registers as reader *and* writer of the cell,
                        // exactly as the GPU engine does.
                        Mutation::Add { table, key, col, .. } => {
                            let ck = cell_key(*key, Some(*col));
                            MinTidLog::note(&mut log.read_min, (*table, Some(*col), ck), tid);
                            MinTidLog::note(&mut log.write_min, (*table, Some(*col), ck), tid);
                        }
                        Mutation::Insert { table, key, .. } => {
                            MinTidLog::note(
                                &mut log.write_min,
                                (*table, None, cell_key(*key, None)),
                                tid,
                            );
                            MinTidLog::note_mem(
                                &mut log.mem_write_min,
                                (*table, *key >> MEMBERSHIP_PARTITION_SHIFT),
                                tid,
                            );
                        }
                        Mutation::Delete { table, key } => {
                            MinTidLog::note(
                                &mut log.write_min,
                                (*table, None, cell_key(*key, None)),
                                tid,
                            );
                            MinTidLog::note_mem(
                                &mut log.mem_write_min,
                                (*table, *key >> MEMBERSHIP_PARTITION_SHIFT),
                                tid,
                            );
                            for c in 0..self.db.table(*table).width() as u16 {
                                let col = ColId(c);
                                MinTidLog::note(
                                    &mut log.write_min,
                                    (*table, Some(col), cell_key(*key, Some(col))),
                                    tid,
                                );
                            }
                        }
                    }
                }
                outcomes.push(Some(ExecOutcome { normal, delayed, effects: fx }));
            }

            // ---- Phase 2: conflict detection against the min maps. ----
            for (idx, out) in outcomes.iter().enumerate() {
                let Some(out) = out else { continue };
                if flags[idx] & (USER | FORCED) != 0 {
                    continue;
                }
                let tid = batch.txns[idx].tid.0;
                for r in &out.effects.reads {
                    let min_w = match membership_partition(r.key) {
                        Some(p) => log.mem_write_min.get(&(r.table, p)),
                        None => log.write_min.get(&(r.table, r.col, cell_key(r.key, r.col))),
                    };
                    if min_w.is_some_and(|&m| m < tid) {
                        flags[idx] |= RAW;
                    }
                }
                // (table, col, cell key, WAW checked?, membership partition)
                let mut write_items: Vec<WriteItem> = Vec::new();
                for m in &out.normal {
                    match m {
                        Mutation::Update { table, key, col, .. }
                        | Mutation::Add { table, key, col, .. } => {
                            write_items.push((*table, Some(*col), cell_key(*key, Some(*col)), true, None));
                        }
                        Mutation::Insert { table, key, .. } => {
                            write_items.push((*table, None, cell_key(*key, None), true, None));
                            write_items.push((*table, None, 0, false, Some(*key >> MEMBERSHIP_PARTITION_SHIFT)));
                        }
                        Mutation::Delete { table, key } => {
                            write_items.push((*table, None, cell_key(*key, None), true, None));
                            write_items.push((*table, None, 0, false, Some(*key >> MEMBERSHIP_PARTITION_SHIFT)));
                            for c in 0..self.db.table(*table).width() as u16 {
                                let col = ColId(c);
                                write_items.push((*table, Some(col), cell_key(*key, Some(col)), true, None));
                            }
                        }
                    }
                }
                for (table, col, cell, check_waw, membership) in write_items {
                    let (min_w, min_r) = match membership {
                        Some(p) => {
                            (log.mem_write_min.get(&(table, p)), log.mem_read_min.get(&(table, p)))
                        }
                        None => (
                            log.write_min.get(&(table, col, cell)),
                            log.read_min.get(&(table, col, cell)),
                        ),
                    };
                    if check_waw && min_w.is_some_and(|&m| m < tid) {
                        flags[idx] |= WAW;
                    }
                    if min_r.is_some_and(|&m| m < tid) {
                        flags[idx] |= WAR;
                    }
                }
            }

            // ---- Phase 3: commit rule + write-back + delayed merge. ----
            let commit_ok = |f: u32| -> bool {
                if f & (USER | FORCED | WAW) != 0 {
                    return false;
                }
                if self.cfg.logical_reordering {
                    f & RAW == 0 || f & WAR == 0
                } else {
                    f & RAW == 0
                }
            };
            let committed_flags: Vec<bool> = flags.iter().map(|&f| commit_ok(f)).collect();
            for (idx, out) in outcomes.iter().enumerate() {
                if !committed_flags[idx] {
                    continue;
                }
                let Some(out) = out else { continue };
                for m in &out.normal {
                    match m {
                        Mutation::Update { table, key, col, value } => {
                            let t = self.db.table(*table);
                            if let Some(rid) = t.lookup(*key) {
                                t.set(rid, *col, *value);
                            }
                        }
                        Mutation::Add { table, key, col, delta } => {
                            let t = self.db.table(*table);
                            if let Some(rid) = t.lookup(*key) {
                                t.add(rid, *col, *delta);
                            }
                        }
                        Mutation::Insert { table, key, values } => {
                            match self.db.table(*table).insert(*key, values) {
                                Ok(_) => {}
                                // Invariant: mirrors the GPU engine — a
                                // committed duplicate means WAW detection
                                // failed, and capacity is provisioned at
                                // load time.
                                Err(TableError::Duplicate(_)) => unreachable!(
                                    "committed duplicate insert: WAW detection failed for key {key}"
                                ),
                                Err(TableError::Full) => panic!(
                                    "table {} out of insert headroom",
                                    self.db.table(*table).schema().name
                                ),
                            }
                        }
                        Mutation::Delete { table, key } => {
                            self.db.table(*table).delete(*key);
                        }
                    }
                }
            }
            let mut merge_map: HashMap<(TableId, ColId, i64), i64> = HashMap::new();
            for (idx, out) in outcomes.iter().enumerate() {
                if !committed_flags[idx] {
                    continue;
                }
                let Some(out) = out else { continue };
                for &(t, c, k, d) in &out.delayed {
                    let e = merge_map.entry((t, c, k)).or_insert(0);
                    *e = e.wrapping_add(d);
                }
            }
            let mut merged: Vec<((TableId, ColId, i64), i64)> = merge_map.into_iter().collect();
            merged.sort_unstable_by_key(|(cell, _)| *cell);
            for ((t, c, k), sum) in merged {
                let table = self.db.table(t);
                if let Some(rid) = table.lookup(k) {
                    table.add(rid, c, sum);
                }
            }

            let mut committed = Vec::new();
            let mut aborted = Vec::new();
            for (i, txn) in batch.txns.iter().enumerate() {
                if committed_flags[i] {
                    committed.push(txn.tid);
                } else {
                    aborted.push(txn.tid);
                }
            }
            // Simulated cost: a coarse serial-CPU model (three phase
            // barriers plus per-op work across the worker pool). Only used
            // for reporting — commit decisions never depend on it.
            let per_op = self.cost.index_ns + self.cost.read_ns + self.cost.write_ns;
            let sim_ns = 3.0 * self.cost.barrier_ns
                + work_ops as f64 * per_op / self.cost.workers as f64;
            BatchReport {
                committed,
                aborted,
                sim_ns,
                critical_path_ns: sim_ns,
                transfer_ns: 0.0,
                wall_ns: wall_start.elapsed().as_nanos() as u64,
                semantics: CommitSemantics::SnapshotBatch,
            }
        }
    }

    impl BatchEngine for CpuFallbackEngine {
        fn name(&self) -> &'static str {
            "LTPG-CPU-fallback"
        }

        fn database(&self) -> &Database {
            &self.db
        }

        fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
            self.run_batch(batch)
        }
    }
}

pub use fallback::{CpuFallbackConfig, CpuFallbackEngine};

#[cfg(test)]
mod fallback_tests {
    use std::collections::HashSet;

    use ltpg_storage::{ColId, Database, TableBuilder, TableId};
    use ltpg_txn::{Batch, BatchEngine, IrOp, ProcId, Src, TidGen, Txn};

    use super::{CpuFallbackConfig, CpuFallbackEngine};

    fn build_db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(64).build());
        for k in 0..8 {
            db.table(t).insert(k, &[10, 0]).unwrap();
        }
        (db, t)
    }

    fn delayed_cfg(t: TableId) -> CpuFallbackConfig {
        CpuFallbackConfig {
            commutative_cols: HashSet::new(),
            delayed_cols: [(t, ColId(1))].into_iter().collect(),
            delayed_update: true,
            logical_reordering: true,
        }
    }

    fn run(engine: &mut CpuFallbackEngine, txns: Vec<Txn>) -> ltpg_txn::BatchReport {
        let mut tids = TidGen::new();
        let batch = Batch::assemble(vec![], txns, &mut tids);
        engine.execute_batch(&batch)
    }

    #[test]
    fn commutative_adds_all_commit_and_merge() {
        let (db, t) = build_db();
        let mut engine = CpuFallbackEngine::new(db, delayed_cfg(t));
        let txns: Vec<Txn> = (0..16)
            .map(|i| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Add {
                        table: t,
                        key: Src::Const(3),
                        col: ColId(1),
                        delta: Src::Const(i + 1),
                    }],
                )
            })
            .collect();
        let report = run(&mut engine, txns);
        assert_eq!(report.committed.len(), 16, "delayed adds never conflict");
        let db = engine.into_database();
        let rid = db.table(t).lookup(3).unwrap();
        assert_eq!(db.table(t).get(rid, ColId(1)), (1..=16).sum::<i64>());
    }

    #[test]
    fn forced_aborts_mirror_the_gpu_rules() {
        let (db, t) = build_db();
        let mut engine = CpuFallbackEngine::new(db, delayed_cfg(t));
        let update_hot = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Update { table: t, key: Src::Const(0), col: ColId(1), val: Src::Const(5) }],
        );
        let delete_on_commutative_table =
            Txn::new(ProcId(0), vec![], vec![IrOp::Delete { table: t, key: Src::Const(1) }]);
        let read_hot = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Read { table: t, key: Src::Const(2), col: ColId(1), out: 0 }],
        );
        let plain_update = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Update { table: t, key: Src::Const(4), col: ColId(0), val: Src::Const(9) }],
        );
        let report = run(
            &mut engine,
            vec![update_hot, delete_on_commutative_table, read_hot, plain_update],
        );
        assert_eq!(report.aborted.len(), 3, "hot-column update/delete/read are force-aborted");
        assert_eq!(report.committed.len(), 1, "the plain update is unaffected");
    }

    #[test]
    fn waw_aborts_all_but_the_minimum_tid() {
        let (db, t) = build_db();
        let mut engine = CpuFallbackEngine::new(db, delayed_cfg(t));
        let txns: Vec<Txn> = (0..6)
            .map(|i| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Update {
                        table: t,
                        key: Src::Const(5),
                        col: ColId(0),
                        val: Src::Const(100 + i),
                    }],
                )
            })
            .collect();
        let report = run(&mut engine, txns);
        assert_eq!(report.committed.len(), 1);
        assert_eq!(report.aborted.len(), 5);
        let min_tid = report
            .committed
            .iter()
            .chain(report.aborted.iter())
            .map(|x| x.0)
            .min()
            .unwrap();
        assert_eq!(report.committed[0].0, min_tid, "deterministic: the minimum TID wins");
    }

    #[test]
    fn raw_rule_depends_on_logical_reordering() {
        // txn A (lower TID) writes key 6; txn B reads key 6 (RAW on B) and
        // writes nothing read by A. With reordering, B commits (no WAR);
        // without, RAW alone aborts B.
        let mk = || {
            vec![
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Update {
                        table: TableId(0),
                        key: Src::Const(6),
                        col: ColId(0),
                        val: Src::Const(1),
                    }],
                ),
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![IrOp::Read { table: TableId(0), key: Src::Const(6), col: ColId(0), out: 0 }],
                ),
            ]
        };
        let (db, t) = build_db();
        let mut reordering = CpuFallbackEngine::new(db, delayed_cfg(t));
        assert_eq!(run(&mut reordering, mk()).committed.len(), 2);

        let (db2, t2) = build_db();
        let mut strict = CpuFallbackEngine::new(
            db2,
            CpuFallbackConfig { logical_reordering: false, ..delayed_cfg(t2) },
        );
        let report = run(&mut strict, mk());
        assert_eq!(report.committed.len(), 1, "without reordering, RAW aborts the reader");
    }

    #[test]
    fn duplicate_insert_is_a_user_abort() {
        let (db, t) = build_db();
        let mut engine = CpuFallbackEngine::new(db, delayed_cfg(t));
        let dup = Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Insert { table: t, key: Src::Const(0), values: vec![Src::Const(1), Src::Const(1)] }],
        );
        let report = run(&mut engine, vec![dup]);
        assert_eq!(report.committed.len(), 0);
        assert_eq!(report.aborted.len(), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_balances() {
        let mut c = ParallelClock::new(4);
        for _ in 0..8 {
            c.assign(10.0);
        }
        assert!((c.makespan_ns() - 20.0).abs() < 1e-9);
        c.assign(100.0);
        assert!((c.makespan_ns() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn serial_time_delays_everything() {
        let mut c = ParallelClock::new(2);
        c.assign(10.0);
        c.serial(100.0);
        assert!((c.makespan_ns() - 110.0).abs() < 1e-9);
        assert!((c.total_work_ns() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn single_worker_pool_is_serial() {
        let mut c = ParallelClock::new(1);
        c.assign(5.0);
        c.assign(5.0);
        assert!((c.makespan_ns() - 10.0).abs() < 1e-9);
    }
}
