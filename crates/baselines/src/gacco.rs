//! GaccO (Böschen & Binnig, SIGMOD 2022): deterministic conflict ordering
//! via GPU pre-processing.
//!
//! GaccO's pre-processing builds **access tables** from the declared sets,
//! sorts them by `(row, TID)` on the device, and derives for every
//! transaction a per-row *conflict position* — its index in the row's
//! TID-sorted access queue. Execution then proceeds in bulk-synchronous
//! **waves**: a transaction runs in the wave equal to its maximum conflict
//! position, so accesses to each contended row happen in TID order.
//! Everything commits; the equivalent serial order is TID order.
//!
//! Two signature GaccO behaviours are modelled faithfully:
//!
//! * **Atomic-exchange optimization** — commutative `Add` operations are
//!   turned into "interchangeable atomic actions" that need no conflict
//!   position at all. This is why GaccO is spectacular on 100 %-Payment
//!   workloads (135 M TPS in Table II) — the W_YTD hotspot becomes one
//!   wave of atomics.
//! * **Heavy transfer volume** — the access tables and conflict metadata
//!   cross PCIe in both directions, giving GaccO the multi-millisecond
//!   transfer latencies of Table IV.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ltpg_gpu_sim::{Device, DeviceConfig};
use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{apply_effects, execute_speculative};
use ltpg_txn::{declared_accesses, Batch, BatchEngine, BatchReport, IrOp};

/// The GaccO engine.
pub struct GaccoEngine {
    db: Database,
    device: Arc<Device>,
}

impl GaccoEngine {
    /// Create an engine with a default simulated device.
    pub fn new(db: Database) -> Self {
        Self::with_device(db, DeviceConfig::default())
    }

    /// Create with an explicit device configuration.
    pub fn with_device(db: Database, cfg: DeviceConfig) -> Self {
        let device = Arc::new(Device::new(cfg));
        device.register_allocation(db.bytes());
        GaccoEngine { db, device }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Cell-granularity accesses of one transaction:
    /// `(cell, kind)` where a cell is `(table, key, column)` or the row's
    /// existence pseudo-cell (`u32::MAX`) for inserts and missing-key
    /// probes. GaccO works "at the data field level", so ordering is per
    /// cell, not per row.
    fn cell_accesses(txn: &ltpg_txn::Txn) -> Vec<((u16, i64, u32), CellKind)> {
        const EXISTENCE: u32 = u32::MAX;
        let mut out: Vec<((u16, i64, u32), CellKind)> = Vec::new();
        let mut regs: Vec<Option<i64>> = vec![None; txn.reg_count()];
        let fold = |s: ltpg_txn::Src, regs: &[Option<i64>], txn: &ltpg_txn::Txn| match s {
            ltpg_txn::Src::Const(v) => Some(v),
            ltpg_txn::Src::Param(p) => txn.params.get(usize::from(p)).copied(),
            ltpg_txn::Src::Reg(r) => regs[usize::from(r)],
            ltpg_txn::Src::Tid => Some(txn.tid.0 as i64),
        };
        let push = |out: &mut Vec<((u16, i64, u32), CellKind)>, cell: (u16, i64, u32), kind: CellKind| {
            match out.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, k)) => *k = k.merge(kind),
                None => out.push((cell, kind)),
            }
        };
        for op in &txn.ops {
            match op {
                IrOp::Add { table, key, col, .. } => {
                    if let Some(k) = fold(*key, &regs, txn) {
                        push(&mut out, (table.0, k, u32::from(col.0)), CellKind::Add);
                    }
                }
                IrOp::Update { table, key, col, .. } => {
                    if let Some(k) = fold(*key, &regs, txn) {
                        push(&mut out, (table.0, k, u32::from(col.0)), CellKind::Write);
                    }
                }
                IrOp::Delete { table, key } => {
                    if let Some(k) = fold(*key, &regs, txn) {
                        push(&mut out, (table.0, k, EXISTENCE), CellKind::Write);
                    }
                }
                IrOp::Read { table, key, col, out: o } => {
                    if let Some(k) = fold(*key, &regs, txn) {
                        push(&mut out, (table.0, k, u32::from(col.0)), CellKind::Read);
                        push(&mut out, (table.0, k, EXISTENCE), CellKind::Read);
                    }
                    regs[usize::from(*o)] = None;
                }
                IrOp::Insert { table, key, .. } => {
                    if let Some(k) = fold(*key, &regs, txn) {
                        push(&mut out, (table.0, k, EXISTENCE), CellKind::Write);
                    }
                }
                IrOp::Compute { f, a, b, out: o } => {
                    let v = match (fold(*a, &regs, txn), fold(*b, &regs, txn)) {
                        (Some(x), Some(y)) => Some(f.apply(x, y)),
                        _ => None,
                    };
                    regs[usize::from(*o)] = v;
                }
                IrOp::ScanSum { table, start, count, col, out: o } => {
                    if let Some(s0) = fold(*start, &regs, txn) {
                        for i in 0..i64::from(*count) {
                            push(&mut out, (table.0, s0 + i, u32::from(col.0)), CellKind::Read);
                            push(&mut out, (table.0, s0 + i, EXISTENCE), CellKind::Read);
                        }
                    }
                    regs[usize::from(*o)] = None;
                }
                IrOp::RangeSum { .. } | IrOp::RangeMinKey { .. } | IrOp::RangeCountBelow { .. } => {
                    unreachable!("GaccO requires declarable transactions; ordered scans are not")
                }
            }
        }
        out
    }
}

/// How a transaction touched one cell (strongest-mode summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellKind {
    Read,
    Write,
    Add,
}

impl CellKind {
    fn merge(self, other: CellKind) -> CellKind {
        use CellKind::*;
        match (self, other) {
            (Write, _) | (_, Write) => Write,
            // A txn that both reads and adds a cell is an RMW: a write.
            (Read, Add) | (Add, Read) => Write,
            (Add, Add) => Add,
            (Read, Read) => Read,
        }
    }
}

impl BatchEngine for GaccoEngine {
    fn name(&self) -> &'static str {
        "GaccO"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        self.device.reset();
        let lane_proc_overhead = self.device.cost().proc_overhead_cycles;
        let n = batch.len();

        // ---- Upload: parameters + declared access tables. ----
        let declared: Vec<_> = batch
            .txns
            .iter()
            .map(|t| declared_accesses(t).expect("GaccO requires declarable transactions"))
            .collect();
        let access_entries: usize =
            declared.iter().map(|d| d.reads.len() + d.writes.len() + d.inserts.len()).sum();
        let h2d = self.device.h2d(batch.payload_bytes() + access_entries as u64 * 8);

        // ---- Pre-processing: radix-sort the access table by (row, TID)
        // (8 passes of 4 bits over 32-bit packed keys, the standard GPU
        // radix sort GaccO's preprocessing builds on). ----
        let sort_items: Vec<u32> = (0..access_entries as u32).collect();
        for _ in 0..8 {
            self.device.launch("sort_pass", &sort_items, |lane, _| {
                lane.read_global(1);
                lane.write_global(1);
                lane.charge_alu(2);
            });
        }
        self.device.synchronize();

        // ---- Exchange eligibility (pre-processing pass 1): a cell whose
        // batch-wide accesses are exclusively commutative adds becomes an
        // "interchangeable atomic action" and needs no conflict position.
        // Any read or overwrite disqualifies the cell, and its adds are
        // then ordered like writes. ----
        type TxnCells = Vec<((u16, i64, u32), CellKind)>;
        let per_txn: Vec<TxnCells> =
            batch.txns.iter().map(Self::cell_accesses).collect();
        let mut add_only: HashMap<(u16, i64, u32), bool> = HashMap::new();
        for accesses in &per_txn {
            for (cell, kind) in accesses {
                let e = add_only.entry(*cell).or_insert(true);
                *e = *e && *kind == CellKind::Add;
            }
        }

        // ---- Conflict order → wave of each transaction (pass 2). A
        // transaction's wave exceeds the wave of every earlier conflicting
        // transaction (readers of one cell share a wave; writers
        // serialize; exchange-eligible cells impose nothing). ----
        let mut last_writer: HashMap<(u16, i64, u32), u32> = HashMap::new();
        let mut last_reader: HashMap<(u16, i64, u32), u32> = HashMap::new();
        let mut wave = vec![0u32; n];
        for (i, accesses) in per_txn.iter().enumerate() {
            let mut w = 0u32;
            for (cell, kind) in accesses {
                if *kind == CellKind::Add && add_only[cell] {
                    continue;
                }
                let is_write = *kind != CellKind::Read;
                if let Some(&lw) = last_writer.get(cell) {
                    w = w.max(lw + 1);
                }
                if is_write {
                    if let Some(&lr) = last_reader.get(cell) {
                        w = w.max(lr + 1);
                    }
                }
            }
            wave[i] = w;
            for (cell, kind) in accesses {
                if *kind == CellKind::Add && add_only[cell] {
                    continue;
                }
                let is_write = *kind != CellKind::Read;
                let slot = if is_write { &mut last_writer } else { &mut last_reader };
                let e = slot.entry(*cell).or_insert(0);
                *e = (*e).max(w);
            }
        }

        // Pure-exchange transactions (nothing but reads and exchangeable
        // adds) skip interpreter dispatch in the execution kernel.
        let lean: Vec<bool> = per_txn
            .iter()
            .map(|accesses| {
                accesses.iter().all(|(cell, kind)| {
                    *kind == CellKind::Read || (*kind == CellKind::Add && add_only[cell])
                })
            })
            .collect();

        // ---- Execute waves. ----
        let max_wave = wave.iter().copied().max().unwrap_or(0);
        let mut committed = Vec::with_capacity(n);
        let mut aborted = Vec::new();
        let db = &self.db;
        for w in 0..=max_wave {
            let layer: Vec<(usize, usize)> =
                (0..n).filter(|&i| wave[i] == w).enumerate().collect();
            if layer.is_empty() {
                continue;
            }
            let slots: Vec<parking_lot::Mutex<Option<_>>> =
                layer.iter().map(|_| parking_lot::Mutex::new(None)).collect();
            self.device.launch("exec_wave", &layer, |lane, &(pos, i)| {
                let txn = &batch.txns[i];
                lane.branch(u32::from(txn.proc.0));
                lane.charge_alu(txn.ops.len() as u32);
                if lean[i] {
                    // Pure exchange transaction (all writes commutative):
                    // executes as a burst of pre-planned atomic actions
                    // with no interpreter dispatch — the optimization that
                    // makes GaccO spectacular on 100 %-Payment (Table II).
                    lane.read_global(txn.ops.len() as u32);
                    lane.write_global(txn.ops.len() as u32);
                } else {
                    lane.charge_cycles(lane_proc_overhead);
                    lane.read_global_random(2 * txn.ops.len() as u32);
                    lane.write_global(txn.ops.len() as u32);
                }
                *slots[pos].lock() = Some(execute_speculative(db, txn));
            });
            // Waves apply in TID order; within a wave rows are disjoint
            // except commutative adds, which commute.
            for (pos, slot) in slots.into_iter().enumerate() {
                let i = layer[pos].1;
                match slot.into_inner().expect("lane ran") {
                    Ok(fx) => {
                        apply_effects(db, &fx).expect("GaccO apply");
                        committed.push(batch.txns[i].tid);
                    }
                    Err(_) => aborted.push(batch.txns[i].tid),
                }
            }
            self.device.synchronize();
        }
        committed.sort_unstable();

        // ---- Download: results + updated tuple copies (GaccO keeps
        // primary copies host-side and propagates every update back,
        // which is why its transmission volume dwarfs LTPG's R/W-set
        // shipping — paper Table IV). ----
        let d2h = self.device.d2h(n as u64 * 8 + access_entries as u64 * 8);
        let sim_ns = self.device.elapsed_ns();

        BatchReport {
            committed,
            aborted,
            sim_ns,
            critical_path_ns: sim_ns,
            transfer_ns: h2d + d2h,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for GaccoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaccoEngine").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ComputeFn, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(256).build());
        for k in 0..50 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    fn add(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(1),
            vec![],
            vec![IrOp::Add { table: t, key: Src::Const(k), col: ColId(1), delta: Src::Const(1) }],
        )
    }

    #[test]
    fn rmw_chain_executes_in_tid_waves() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = GaccoEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..30).map(|_| rmw(t, 9)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 30);
        let rid = engine.database().table(t).lookup(9).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 30);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn atomic_exchange_collapses_commutative_hotspot_to_one_wave() {
        let (db, t) = setup();
        let mut engine = GaccoEngine::new(db);
        let mut gen = TidGen::new();
        // 100 commutative adds to one row: one wave.
        let batch = Batch::assemble(vec![], (0..100).map(|_| add(t, 0)).collect(), &mut gen);
        let before = engine.device().stats().kernels;
        let report = engine.execute_batch(&batch);
        let exec_kernels = engine.device().stats().kernels - before;
        let _ = exec_kernels;
        assert_eq!(report.committed.len(), 100);
        let rid = engine.database().table(t).lookup(0).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(1)), 100);
        // Compare wave counts: RMW chain needs ~100 waves, adds need 1.
        let mut gen2 = TidGen::new();
        let (db2, t2) = setup();
        let mut engine2 = GaccoEngine::new(db2);
        let b2 = Batch::assemble(vec![], (0..100).map(|_| rmw(t2, 0)).collect(), &mut gen2);
        let r_adds = report.sim_ns;
        let r_rmw = engine2.execute_batch(&b2).sim_ns;
        assert!(r_rmw > r_adds * 3.0, "rmw {r_rmw} vs adds {r_adds}");
    }

    #[test]
    fn transfer_volume_scales_with_access_sets() {
        let (db, t) = setup();
        let mut engine = GaccoEngine::new(db);
        let mut gen = TidGen::new();
        let batch = Batch::assemble(vec![], (0..50).map(|k| rmw(t, k as i64 % 50)).collect(), &mut gen);
        let report = engine.execute_batch(&batch);
        assert!(report.transfer_ns > 0.0);
        let stats = engine.device().stats();
        // Access tables shipped both ways.
        assert!(stats.bytes_h2d > batch.payload_bytes());
        assert!(stats.bytes_d2h > 50 * 8);
    }
}
