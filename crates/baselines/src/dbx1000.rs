//! DBx1000 running TicToc (Yu et al., SIGMOD 2016) — the configuration the
//! paper benchmarks ("DBx1000, utilizing the TicToc concurrency control
//! mechanism").
//!
//! TicToc is a nondeterministic OCC with **per-row timestamp words**
//! packing a write timestamp and an rts delta (`rts = wts + delta`).
//! Readers snapshot the word around the data read (lock-free, retrying on
//! torn reads); writers lock their rows at validation, derive
//! `commit_ts = max(read wts, written rts + 1)`, revalidate the read set
//! (extending `rts` where possible — the trick that lets TicToc commit
//! schedules plain OCC would abort), apply, and release by storing the new
//! timestamp word. Aborted attempts retry with bounded backoff.
//!
//! Real worker threads execute the batch; the claimed equivalent serial
//! order is `(commit_ts, commit sequence)`, which the ordered-replay
//! oracle validates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ltpg_storage::{Database, RowId, TableError, TableId};
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::{execute_speculative_on, CellStore, Mutation, TxnEffects};
use ltpg_txn::{Batch, BatchEngine, BatchReport, Tid};

use crate::cpu::{CpuCostModel, ParallelClock};

const LOCK_BIT: u64 = 1 << 63;
const WTS_MASK: u64 = (1 << 48) - 1;
const DELTA_MAX: u64 = (1 << 15) - 1;

#[inline]
fn wts_of(w: u64) -> u64 {
    w & WTS_MASK
}
#[inline]
fn rts_of(w: u64) -> u64 {
    wts_of(w) + ((w >> 48) & DELTA_MAX)
}
#[inline]
fn locked(w: u64) -> bool {
    w & LOCK_BIT != 0
}
#[inline]
fn pack(wts: u64, rts: u64) -> u64 {
    debug_assert!(rts >= wts);
    let delta = (rts - wts).min(DELTA_MAX);
    (delta << 48) | (wts & WTS_MASK)
}

/// A row a transaction read, with the timestamp word it observed.
#[derive(Debug, Clone, Copy)]
struct ReadEntry {
    table: u16,
    rid: RowId,
    observed: u64,
}

/// Lock-free read view: snapshots timestamp words around each cell read.
struct TicTocView<'a> {
    db: &'a Database,
    ts: &'a [Vec<AtomicU64>],
    reads: std::cell::RefCell<Vec<ReadEntry>>,
}

impl TicTocView<'_> {
    fn record(&self, table: u16, rid: RowId, word: u64) {
        let mut reads = self.reads.borrow_mut();
        if !reads.iter().any(|r| r.table == table && r.rid == rid) {
            reads.push(ReadEntry { table, rid, observed: word });
        }
    }
}

impl CellStore for TicTocView<'_> {
    fn cell(&self, table: TableId, key: i64, col: ltpg_storage::ColId) -> Option<i64> {
        let t = self.db.table(table);
        let rid = t.lookup(key)?;
        let word = &self.ts[usize::from(table.0)][rid.idx()];
        loop {
            let w1 = word.load(Ordering::Acquire);
            if locked(w1) {
                std::hint::spin_loop();
                continue;
            }
            let v = t.get(rid, col);
            let w2 = word.load(Ordering::Acquire);
            if w1 == w2 {
                self.record(table.0, rid, w1);
                return Some(v);
            }
        }
    }

    fn row_exists(&self, table: TableId, key: i64) -> bool {
        self.db.table(table).lookup(key).is_some()
    }

    fn row_width(&self, table: TableId) -> usize {
        self.db.table(table).width()
    }
}

/// The DBx1000/TicToc engine.
pub struct Dbx1000Engine {
    db: Database,
    /// Per-table, per-row timestamp words.
    ts: Vec<Vec<AtomicU64>>,
    cost: CpuCostModel,
    /// Real host threads used to execute the batch.
    threads: usize,
    /// Retries before a transaction is reported aborted.
    max_retries: usize,
}

impl Dbx1000Engine {
    /// Create an engine over `db`.
    pub fn new(db: Database) -> Self {
        let ts = db
            .iter()
            .map(|(_, t)| (0..t.capacity()).map(|_| AtomicU64::new(0)).collect())
            .collect();
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        Dbx1000Engine { db, ts, cost: CpuCostModel::default(), threads, max_retries: 100 }
    }

    /// Attempt one transaction; returns `(commit_ts, commit_seq, effects)`
    /// or `None` on an abort that should retry. `Err(())` is a user abort.
    /// `seq` is drawn *while the write locks are still held*, so that any
    /// reader of this transaction's writes observes a later sequence — the
    /// tie-breaker that makes `(commit_ts, seq)` a valid serial order.
    #[allow(clippy::result_unit_err)]
    fn attempt(
        &self,
        txn: &ltpg_txn::Txn,
        seq: &AtomicU64,
    ) -> Result<Option<(u64, u64, TxnEffects)>, ()> {
        let view = TicTocView { db: &self.db, ts: &self.ts, reads: Default::default() };
        let fx = match execute_speculative_on(&view, txn) {
            Ok(fx) => fx,
            Err(_) => return Err(()),
        };
        let reads = view.reads.into_inner();

        // Write rows (existing rows only; inserts are fresh keys).
        let mut write_rows: Vec<(u16, RowId)> = Vec::new();
        for m in &fx.mutations {
            match m {
                Mutation::Update { table, key, .. } | Mutation::Add { table, key, .. } => {
                    if let Some(rid) = self.db.table(*table).lookup(*key) {
                        if !write_rows.contains(&(table.0, rid)) {
                            write_rows.push((table.0, rid));
                        }
                    }
                }
                Mutation::Insert { .. } => {}
                Mutation::Delete { .. } => {
                    unimplemented!("TicToc reproduction does not support deletes")
                }
            }
        }
        write_rows.sort_unstable();

        // Lock write rows in order.
        let mut held: Vec<(u16, RowId)> = Vec::new();
        let unlock_held = |held: &[(u16, RowId)], ts: &[Vec<AtomicU64>]| {
            for &(t, rid) in held {
                ts[usize::from(t)][rid.idx()].fetch_and(!LOCK_BIT, Ordering::Release);
            }
        };
        for &(t, rid) in &write_rows {
            let word = &self.ts[usize::from(t)][rid.idx()];
            let mut spins = 0u32;
            loop {
                let w = word.load(Ordering::Acquire);
                if !locked(w)
                    && word
                        .compare_exchange(w, w | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    held.push((t, rid));
                    break;
                }
                spins += 1;
                if spins > 2_000 {
                    unlock_held(&held, &self.ts);
                    return Ok(None);
                }
                std::hint::spin_loop();
            }
        }

        // Commit timestamp.
        let mut commit_ts = 0u64;
        for r in &reads {
            commit_ts = commit_ts.max(wts_of(r.observed));
        }
        for &(t, rid) in &write_rows {
            let w = self.ts[usize::from(t)][rid.idx()].load(Ordering::Acquire);
            commit_ts = commit_ts.max(rts_of(w) + 1);
        }

        // Validate the read set, extending rts where possible.
        for r in &reads {
            if commit_ts <= rts_of(r.observed) {
                continue;
            }
            let word = &self.ts[usize::from(r.table)][r.rid.idx()];
            loop {
                let cur = word.load(Ordering::Acquire);
                let in_write_set = write_rows.contains(&(r.table, r.rid));
                if wts_of(cur) != wts_of(r.observed) {
                    unlock_held(&held, &self.ts);
                    return Ok(None); // someone overwrote our read
                }
                if locked(cur) && !in_write_set {
                    unlock_held(&held, &self.ts);
                    return Ok(None); // a writer is mid-commit on our read
                }
                if commit_ts <= rts_of(cur) {
                    break; // already extended far enough
                }
                if commit_ts - wts_of(cur) > DELTA_MAX {
                    unlock_held(&held, &self.ts);
                    return Ok(None); // delta overflow: rare, retry
                }
                let next = (cur & LOCK_BIT) | pack(wts_of(cur), commit_ts);
                if word.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                    break;
                }
            }
        }

        // Apply: cells first, then inserts, then release with the new wts.
        for m in &fx.mutations {
            match m {
                Mutation::Update { table, key, col, value } => {
                    let t = self.db.table(*table);
                    if let Some(rid) = t.lookup(*key) {
                        t.set(rid, *col, *value);
                    }
                }
                Mutation::Add { table, key, col, delta } => {
                    let t = self.db.table(*table);
                    if let Some(rid) = t.lookup(*key) {
                        t.add(rid, *col, *delta);
                    }
                }
                Mutation::Insert { table, key, values } => {
                    match self.db.table(*table).insert(*key, values) {
                        Ok(rid) => {
                            self.ts[usize::from(table.0)][rid.idx()]
                                .store(pack(commit_ts, commit_ts), Ordering::Release);
                        }
                        Err(TableError::Duplicate(_)) => {
                            // Another thread created the key concurrently;
                            // treat as a user abort of this attempt.
                            unlock_held(&held, &self.ts);
                            return Err(());
                        }
                        Err(TableError::Full) => panic!("table out of insert headroom"),
                    }
                }
                Mutation::Delete { .. } => unreachable!(),
            }
        }
        let my_seq = seq.fetch_add(1, Ordering::AcqRel);
        for &(t, rid) in &held {
            // Store wts = rts = commit_ts and clear the lock in one go.
            self.ts[usize::from(t)][rid.idx()].store(pack(commit_ts, commit_ts), Ordering::Release);
        }
        Ok(Some((commit_ts, my_seq, fx)))
    }
}

impl BatchEngine for Dbx1000Engine {
    fn name(&self) -> &'static str {
        "DBx1000"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let n = batch.len();
        let seq = AtomicU64::new(0);
        // (commit_ts, seq, tid) per committed txn; attempts for costing.
        let commits: Vec<parking_lot::Mutex<Option<(u64, u64)>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        let attempts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let user_aborts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

        let threads = self.threads.min(n.max(1));
        crossbeam::scope(|s| {
            for th in 0..threads {
                let engine = &*self;
                let batch = &batch;
                let commits = &commits;
                let attempts = &attempts;
                let user_aborts = &user_aborts;
                let seq = &seq;
                s.spawn(move |_| {
                    let mut i = th;
                    while i < n {
                        let txn = &batch.txns[i];
                        let mut tries = 0usize;
                        loop {
                            attempts[i].fetch_add(1, Ordering::Relaxed);
                            match engine.attempt(txn, seq) {
                                Ok(Some((cts, s, _fx))) => {
                                    *commits[i].lock() = Some((cts, s));
                                    break;
                                }
                                Ok(None) => {
                                    tries += 1;
                                    if tries > engine.max_retries {
                                        break;
                                    }
                                    for _ in 0..(tries * 17) % 511 {
                                        std::hint::spin_loop();
                                    }
                                }
                                Err(()) => {
                                    user_aborts[i].store(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        i += threads;
                    }
                });
            }
        })
        .expect("TicToc worker panicked");

        // Simulated time: per-attempt costs on the modelled 30-core pool,
        // plus the serial chain through the batch's hottest RMW row (the
        // cache-line ping-pong that throttles TicToc on small warehouse
        // counts, Table II).
        let mut clock = ParallelClock::new(self.cost.workers);
        let mut row_writes: std::collections::HashMap<(u16, i64), u32> = std::collections::HashMap::new();
        for (i, txn) in batch.txns.iter().enumerate() {
            let tries = attempts[i].load(Ordering::Relaxed) as f64;
            let per_attempt = txn.ops.len() as f64
                * (self.cost.index_ns + self.cost.read_ns + self.cost.validate_ns)
                + self.cost.write_ns * 2.0;
            clock.assign(tries * per_attempt + (tries - 1.0).max(0.0) * self.cost.abort_ns);
            if let Some(acc) = ltpg_txn::declared_accesses(txn) {
                for (t, k) in acc.writes {
                    *row_writes.entry((t.0, k)).or_default() += 1;
                }
            }
        }
        let hottest = row_writes.values().copied().max().unwrap_or(0);
        clock.serial(f64::from(hottest) * self.cost.hot_rmw_ns);

        let mut order: Vec<(u64, u64, Tid)> = Vec::new();
        let mut aborted = Vec::new();
        for (i, txn) in batch.txns.iter().enumerate() {
            match *commits[i].lock() {
                Some((cts, s)) => order.push((cts, s, txn.tid)),
                None => aborted.push(txn.tid),
            }
        }
        order.sort_unstable();
        BatchReport {
            committed: order.into_iter().map(|(_, _, tid)| tid).collect(),
            aborted,
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for Dbx1000Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dbx1000Engine").field("threads", &self.threads).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ComputeFn, IrOp, ProcId, Src, TidGen, Txn};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(4096).build());
        for k in 0..64 {
            db.table(t).insert(k, &[0, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    #[test]
    fn contended_rmws_all_commit_and_accumulate() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = Dbx1000Engine::new(db);
        let mut gen = TidGen::new();
        // 200 RMWs over 4 keys from up to 8 real threads.
        let txns: Vec<Txn> = (0..200).map(|i| rmw(t, (i % 4) as i64)).collect();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 200, "retries must drain all RMWs");
        let total: i64 = (0..4)
            .map(|k| {
                let rid = engine.database().table(t).lookup(k).unwrap();
                engine.database().table(t).get(rid, ColId(0))
            })
            .sum();
        assert_eq!(total, 200, "every increment applied exactly once");
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }

    #[test]
    fn concurrent_inserts_of_distinct_keys_commit() {
        let (db, t) = setup();
        let mut engine = Dbx1000Engine::new(db);
        let mut gen = TidGen::new();
        let txns: Vec<Txn> = (0..100)
            .map(|_| {
                Txn::new(
                    ProcId(0),
                    vec![],
                    vec![
                        // Fresh keys: 1000 + TID (preloaded keys are 0..64).
                        IrOp::Compute { f: ComputeFn::Add, a: Src::Tid, b: Src::Const(1000), out: 0 },
                        IrOp::Insert { table: t, key: Src::Reg(0), values: vec![Src::Const(1), Src::Const(2)] },
                    ],
                )
            })
            .collect();
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 100);
        assert_eq!(engine.database().table(t).live_rows(), 64 + 100);
    }

    #[test]
    fn ts_word_packing_roundtrips() {
        let w = pack(1234, 1234 + 77);
        assert_eq!(wts_of(w), 1234);
        assert_eq!(rts_of(w), 1311);
        assert!(!locked(w));
        assert!(locked(w | LOCK_BIT));
        assert_eq!(wts_of(w | LOCK_BIT), 1234);
        // Delta saturates.
        let big = pack(10, 10 + DELTA_MAX + 500);
        assert_eq!(rts_of(big), 10 + DELTA_MAX);
    }

    #[test]
    fn read_then_write_by_others_is_linearized() {
        // A writer and many readers of one row; readers copy into their own
        // row. Whatever interleaving happens, the ordered oracle must hold.
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = Dbx1000Engine::new(db);
        let mut gen = TidGen::new();
        let mut txns = vec![Txn::new(
            ProcId(0),
            vec![],
            vec![IrOp::Update { table: t, key: Src::Const(1), col: ColId(0), val: Src::Const(42) }],
        )];
        for i in 0..30 {
            txns.push(Txn::new(
                ProcId(0),
                vec![],
                vec![
                    IrOp::Read { table: t, key: Src::Const(1), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(10 + i), col: ColId(1), val: Src::Reg(0) },
                ],
            ));
        }
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 31);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
    }
}
