#![warn(missing_docs)]

//! # ltpg-baselines — the paper's comparison systems
//!
//! Reimplementations of every system LTPG is evaluated against (paper
//! §VI-A) plus two modern rivals (Block-STM and an OptME/Nezha-style
//! address-graph scheduler), all running over the shared substrates
//! (`ltpg-storage` tables, the `ltpg-txn` IR, and — for the GPU systems —
//! the `ltpg-gpu-sim` device):
//!
//! | Engine | Kind | Essence |
//! |---|---|---|
//! | [`AriaEngine`] | CPU, deterministic | batch OCC against a snapshot, reservation tables, optional deterministic reordering |
//! | [`CalvinEngine`] | CPU, deterministic | single-threaded lock manager over pre-declared R/W sets, worker pool execution |
//! | [`BohmEngine`] | CPU, deterministic | MVCC placeholder insertion partitioned by key, then dependency-resolved execution |
//! | [`PwvEngine`] | CPU, deterministic | transaction fragments with early write visibility, per-partition TID-ordered execution |
//! | [`Dbx1000Engine`] | CPU, nondeterministic | TicToc OCC (per-row read/write timestamps, validation with rts extension), real worker threads |
//! | [`BambooEngine`] | CPU, nondeterministic | wound-wait 2PL with early lock release on hot rows and commit dependencies |
//! | [`GputxEngine`] | GPU (simulated) | T-dependency graph from declared sets, rank-by-rank bulk-synchronous execution |
//! | [`GaccoEngine`] | GPU (simulated) | pre-processing sort into per-key conflict order, wave execution with atomic-exchange optimization |
//! | [`BlockStmEngine`] | GPU (simulated) | optimistic wave execution, read-set validation, deterministic TID-order finalization with deferral re-execution |
//! | [`AddrGraphEngine`] | GPU (simulated) | address-sorted conflict graph from declared sets, topological layers executed in parallel, serial barriers for undeclarable txns |
//!
//! Every engine implements [`ltpg_txn::BatchEngine`], so the benchmark
//! harness sweeps them interchangeably with LTPG. Deterministic engines
//! are validated by the ordered-replay oracle; the two nondeterministic
//! ones by final-state equivalence against their claimed commit order plus
//! the TPC-C invariants.
//!
//! Simulated time for the CPU engines comes from one calibrated
//! [`cpu::CpuCostModel`] (30 workers, matching the paper's "30 CPU cores"),
//! so GPU-vs-CPU throughput ratios are comparable in shape.

pub mod addrgraph;
pub mod aria;
pub mod bamboo;
pub mod blockstm;
pub mod bohm;
pub mod calvin;
pub mod cpu;
pub mod dbx1000;
pub mod gacco;
pub mod gputx;
pub mod pwv;

pub use addrgraph::{AddrGraphCore, AddrGraphEngine, AddrGraphStats};
pub use aria::AriaEngine;
pub use blockstm::{BlockStmCore, BlockStmEngine, BlockStmStats};
pub use bamboo::BambooEngine;
pub use bohm::BohmEngine;
pub use calvin::CalvinEngine;
pub use cpu::{CpuCostModel, CpuFallbackConfig, CpuFallbackEngine};
pub use dbx1000::Dbx1000Engine;
pub use gacco::GaccoEngine;
pub use gputx::GputxEngine;
pub use pwv::PwvEngine;
