#![warn(missing_docs)]

//! # ltpg-baselines — the paper's eight comparison systems
//!
//! Reimplementations of every system LTPG is evaluated against (paper
//! §VI-A), all running over the shared substrates (`ltpg-storage` tables,
//! the `ltpg-txn` IR, and — for the two GPU systems — the `ltpg-gpu-sim`
//! device):
//!
//! | Engine | Kind | Essence |
//! |---|---|---|
//! | [`AriaEngine`] | CPU, deterministic | batch OCC against a snapshot, reservation tables, optional deterministic reordering |
//! | [`CalvinEngine`] | CPU, deterministic | single-threaded lock manager over pre-declared R/W sets, worker pool execution |
//! | [`BohmEngine`] | CPU, deterministic | MVCC placeholder insertion partitioned by key, then dependency-resolved execution |
//! | [`PwvEngine`] | CPU, deterministic | transaction fragments with early write visibility, per-partition TID-ordered execution |
//! | [`Dbx1000Engine`] | CPU, nondeterministic | TicToc OCC (per-row read/write timestamps, validation with rts extension), real worker threads |
//! | [`BambooEngine`] | CPU, nondeterministic | wound-wait 2PL with early lock release on hot rows and commit dependencies |
//! | [`GputxEngine`] | GPU (simulated) | T-dependency graph from declared sets, rank-by-rank bulk-synchronous execution |
//! | [`GaccoEngine`] | GPU (simulated) | pre-processing sort into per-key conflict order, wave execution with atomic-exchange optimization |
//!
//! Every engine implements [`ltpg_txn::BatchEngine`], so the benchmark
//! harness sweeps them interchangeably with LTPG. Deterministic engines
//! are validated by the ordered-replay oracle; the two nondeterministic
//! ones by final-state equivalence against their claimed commit order plus
//! the TPC-C invariants.
//!
//! Simulated time for the CPU engines comes from one calibrated
//! [`cpu::CpuCostModel`] (30 workers, matching the paper's "30 CPU cores"),
//! so GPU-vs-CPU throughput ratios are comparable in shape.

pub mod aria;
pub mod bamboo;
pub mod bohm;
pub mod calvin;
pub mod cpu;
pub mod dbx1000;
pub mod gacco;
pub mod gputx;
pub mod pwv;

pub use aria::AriaEngine;
pub use bamboo::BambooEngine;
pub use bohm::BohmEngine;
pub use calvin::CalvinEngine;
pub use cpu::{CpuCostModel, CpuFallbackConfig, CpuFallbackEngine};
pub use dbx1000::Dbx1000Engine;
pub use gacco::GaccoEngine;
pub use gputx::GputxEngine;
pub use pwv::PwvEngine;
