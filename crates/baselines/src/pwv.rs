//! PWV (Faleiro, Abadi & Hellerstein, VLDB 2017): early write visibility
//! over partitioned fragment execution.
//!
//! Each transaction is decomposed into **fragments** — maximal runs of
//! consecutive operations touching one partition of the key space. Every
//! partition has a dedicated worker that executes its fragment queue in
//! `(TID, fragment-index)` order; a fragment may run only after its
//! predecessor fragment of the same transaction (register dataflow). A
//! fragment's writes apply immediately — *early write visibility*: later
//! transactions read them before the writer "commits". Because each key
//! lives in exactly one partition and partitions process fragments in TID
//! order, the schedule is conflict-equivalent to TID order and everything
//! commits.

use std::time::Instant;

use ltpg_storage::Database;
use ltpg_txn::engine::CommitSemantics;
use ltpg_txn::exec::execute_range_direct;
use ltpg_txn::{Batch, BatchEngine, BatchReport, ComputeFn, IrOp, Src, Txn};

use crate::cpu::{CpuCostModel, ParallelClock};

/// One fragment: ops `[lo, hi)` of transaction `txn`, on `partition`.
#[derive(Debug, Clone, Copy)]
struct Fragment {
    txn: usize,
    frag_idx: usize,
    lo: usize,
    hi: usize,
    partition: usize,
}

/// The PWV engine.
pub struct PwvEngine {
    db: Database,
    cost: CpuCostModel,
    partitions: usize,
}

impl PwvEngine {
    /// Create an engine with one partition per worker.
    pub fn new(db: Database) -> Self {
        let cost = CpuCostModel::default();
        let partitions = cost.workers;
        PwvEngine { db, cost, partitions }
    }

    fn partition_of_key(&self, key: i64) -> usize {
        ((key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize % self.partitions
    }

    /// Statically resolve the key an op touches (constant folding over
    /// Const/Param/Tid/Compute, `None` for pure ops or dynamic keys).
    fn op_key(&self, txn: &Txn, regs: &mut [Option<i64>], op: &IrOp) -> Option<i64> {
        let fold = |s: Src, regs: &[Option<i64>]| -> Option<i64> {
            match s {
                Src::Const(v) => Some(v),
                Src::Param(p) => txn.params.get(usize::from(p)).copied(),
                Src::Reg(r) => regs[usize::from(r)],
                Src::Tid => Some(txn.tid.0 as i64),
            }
        };
        match op {
            IrOp::Read { key, out, .. } => {
                let k = fold(*key, regs);
                regs[usize::from(*out)] = None;
                k
            }
            IrOp::Update { key, .. }
            | IrOp::Add { key, .. }
            | IrOp::Insert { key, .. }
            | IrOp::Delete { key, .. } => fold(*key, regs),
            IrOp::Compute { f, a, b, out } => {
                let v = match (fold(*a, regs), fold(*b, regs)) {
                    (Some(x), Some(y)) => Some(ComputeFn::apply(*f, x, y)),
                    _ => None,
                };
                regs[usize::from(*out)] = v;
                None
            }
            IrOp::ScanSum { start, out, .. } => {
                let k = fold(*start, regs);
                regs[usize::from(*out)] = None;
                k
            }
            // Ordered scans span partitions; PWV does not support them
            // (they are undeclarable, so the harness never routes them
            // here). Treat as partition-less for fragment shaping.
            IrOp::RangeSum { out, .. }
            | IrOp::RangeMinKey { out, .. }
            | IrOp::RangeCountBelow { out, .. } => {
                regs[usize::from(*out)] = None;
                None
            }
        }
    }

    /// Decompose a transaction into partition-homogeneous fragments.
    fn fragments(&self, txn_idx: usize, txn: &Txn) -> Vec<Fragment> {
        let mut regs = vec![None; txn.reg_count()];
        let mut frags: Vec<Fragment> = Vec::new();
        let mut cur_part: Option<usize> = None;
        let mut lo = 0usize;
        for (i, op) in txn.ops.iter().enumerate() {
            let part = self.op_key(txn, &mut regs, op).map(|k| self.partition_of_key(k));
            match (part, cur_part) {
                (Some(p), Some(c)) if p != c => {
                    frags.push(Fragment { txn: txn_idx, frag_idx: frags.len(), lo, hi: i, partition: c });
                    lo = i;
                    cur_part = Some(p);
                }
                (Some(p), None) => cur_part = Some(p),
                _ => {}
            }
        }
        frags.push(Fragment {
            txn: txn_idx,
            frag_idx: frags.len(),
            lo,
            hi: txn.ops.len(),
            partition: cur_part.unwrap_or(0),
        });
        frags
    }
}

impl BatchEngine for PwvEngine {
    fn name(&self) -> &'static str {
        "PWV"
    }

    fn database(&self) -> &Database {
        &self.db
    }

    fn execute_batch(&mut self, batch: &Batch) -> BatchReport {
        let wall = Instant::now();
        let mut clock = ParallelClock::new(self.cost.workers);
        let n = batch.len();

        // ---- Decompose and enqueue per partition. ----
        let mut queues: Vec<Vec<Fragment>> = vec![Vec::new(); self.partitions];
        let mut frag_total = vec![0usize; n];
        for (i, txn) in batch.txns.iter().enumerate() {
            for f in self.fragments(i, txn) {
                frag_total[i] = frag_total[i].max(f.frag_idx + 1);
                queues[f.partition].push(f);
            }
            // Dependency-graph construction cost.
            clock.assign(txn.ops.len() as f64 * 25.0);
        }
        for q in &mut queues {
            q.sort_by_key(|f| (batch.txns[f.txn].tid, f.frag_idx));
        }
        clock.serial(self.cost.barrier_ns);

        // ---- Execute: per-partition TID order + intra-txn order. ----
        let mut regs: Vec<Vec<i64>> = batch.txns.iter().map(|t| vec![0; t.reg_count()]).collect();
        let mut frags_done = vec![0usize; n];
        let mut heads = vec![0usize; self.partitions];
        let mut remaining: usize = queues.iter().map(Vec::len).sum();
        while remaining > 0 {
            let mut progressed = false;
            for p in 0..self.partitions {
                // Drain every currently-runnable head fragment of p.
                while heads[p] < queues[p].len() {
                    let f = queues[p][heads[p]];
                    if frags_done[f.txn] != f.frag_idx {
                        break; // waiting on an earlier fragment elsewhere
                    }
                    let txn = &batch.txns[f.txn];
                    let ns = (f.hi - f.lo) as f64
                        * (self.cost.index_ns + self.cost.read_ns + self.cost.write_ns);
                    clock.assign_to(p, ns);
                    execute_range_direct(&self.db, txn, f.lo..f.hi, &mut regs[f.txn])
                        .expect("PWV fragment execution");
                    frags_done[f.txn] += 1;
                    heads[p] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            assert!(progressed, "PWV scheduler stalled — fragment order invariant broken");
        }

        BatchReport {
            committed: batch.txns.iter().map(|t| t.tid).collect(),
            aborted: Vec::new(),
            sim_ns: clock.makespan_ns(),
            critical_path_ns: clock.makespan_ns(),
            transfer_ns: 0.0,
            wall_ns: wall.elapsed().as_nanos() as u64,
            semantics: CommitSemantics::SerialOrder,
        }
    }
}

impl std::fmt::Debug for PwvEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PwvEngine").field("partitions", &self.partitions).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltpg_storage::{ColId, TableBuilder, TableId};
    use ltpg_txn::oracle::check_ordered_serializable;
    use ltpg_txn::{ProcId, TidGen};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableBuilder::new("T").columns(["a", "b"]).capacity(256).build());
        for k in 0..100 {
            db.table(t).insert(k, &[k, 0]).unwrap();
        }
        (db, t)
    }

    fn rmw(t: TableId, k: i64) -> Txn {
        Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k), col: ColId(0), out: 0 },
                IrOp::Compute { f: ComputeFn::Add, a: Src::Reg(0), b: Src::Const(1), out: 0 },
                IrOp::Update { table: t, key: Src::Const(k), col: ColId(0), val: Src::Reg(0) },
            ],
        )
    }

    #[test]
    fn cross_partition_dataflow_executes_in_tid_order() {
        let (db, t) = setup();
        let pre = db.deep_clone();
        let mut engine = PwvEngine::new(db);
        let mut gen = TidGen::new();
        // Transactions copying row i's value into row i+50 (likely
        // different partitions), interleaved with RMWs on row 1.
        let mut txns = Vec::new();
        for i in 0..30i64 {
            txns.push(rmw(t, 1));
            txns.push(Txn::new(
                ProcId(1),
                vec![],
                vec![
                    IrOp::Read { table: t, key: Src::Const(1), col: ColId(0), out: 0 },
                    IrOp::Update { table: t, key: Src::Const(50 + i), col: ColId(1), val: Src::Reg(0) },
                ],
            ));
        }
        let batch = Batch::assemble(vec![], txns, &mut gen);
        let report = engine.execute_batch(&batch);
        assert_eq!(report.committed.len(), 60);
        let ordered: Vec<&Txn> =
            report.committed.iter().map(|tid| batch.by_tid(*tid).unwrap()).collect();
        check_ordered_serializable(&pre, &ordered, engine.database()).unwrap();
        // The RMW chain on row 1 accumulated fully.
        let rid = engine.database().table(t).lookup(1).unwrap();
        assert_eq!(engine.database().table(t).get(rid, ColId(0)), 1 + 30);
    }

    #[test]
    fn fragment_decomposition_splits_on_partition_change() {
        let (db, t) = setup();
        let engine = PwvEngine::new(db);
        // Find two keys in different partitions.
        let (k1, k2) = {
            let mut pair = (0, 1);
            'outer: for a in 0..50i64 {
                for b in 0..50i64 {
                    if engine.partition_of_key(a) != engine.partition_of_key(b) {
                        pair = (a, b);
                        break 'outer;
                    }
                }
            }
            pair
        };
        let mut txn = Txn::new(
            ProcId(0),
            vec![],
            vec![
                IrOp::Read { table: t, key: Src::Const(k1), col: ColId(0), out: 0 },
                IrOp::Read { table: t, key: Src::Const(k2), col: ColId(0), out: 1 },
            ],
        );
        txn.tid = ltpg_txn::Tid(1);
        let frags = engine.fragments(0, &txn);
        assert_eq!(frags.len(), 2);
        assert_ne!(frags[0].partition, frags[1].partition);
        assert_eq!((frags[0].lo, frags[0].hi), (0, 1));
        assert_eq!((frags[1].lo, frags[1].hi), (1, 2));
    }

    #[test]
    fn single_partition_txn_is_one_fragment() {
        let (db, t) = setup();
        let engine = PwvEngine::new(db);
        let mut txn = rmw(t, 5);
        txn.tid = ltpg_txn::Tid(1);
        let frags = engine.fragments(0, &txn);
        assert_eq!(frags.len(), 1);
        assert_eq!((frags[0].lo, frags[0].hi), (0, 3));
    }
}
