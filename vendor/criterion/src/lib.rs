//! Minimal in-tree stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `black_box`). Instead of statistical sampling it runs each routine for
//! a short fixed budget and prints the mean wall-clock time — enough to
//! compare orders of magnitude and to keep `cargo bench` working offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub treats all variants
/// identically (setup runs once per iteration, outside the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter as the label.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    iters_hint: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, also keeps the closure from being optimized out.
        black_box(routine());
        let start = Instant::now();
        let mut n = 0u64;
        while n < self.iters_hint && start.elapsed() < Duration::from_millis(200) {
            black_box(routine());
            n += 1;
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / n.max(1) as f64;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        let budget = Instant::now();
        while n < self.iters_hint && budget.elapsed() < Duration::from_millis(400) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            n += 1;
        }
        self.last_mean_ns = total.as_nanos() as f64 / n.max(1) as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    harness: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Advisory sample count (the stub uses it as an iteration hint).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.harness.iters_hint = (n as u64).max(1);
        self
    }

    /// Advisory measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.harness.run_one(&label, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness.
pub struct Criterion {
    iters_hint: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters_hint: 100 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), harness: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher { iters_hint: self.iters_hint, last_mean_ns: 0.0 };
        f(&mut b);
        let ns = b.last_mean_ns;
        if ns >= 1_000_000.0 {
            println!("bench {label:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("bench {label:<48} {:>12.3} us/iter", ns / 1_000.0);
        } else {
            println!("bench {label:<48} {ns:>12.1} ns/iter");
        }
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter(64), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 32],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
