//! Minimal in-tree stand-in for `serde_json`: renders the stub `serde`
//! crate's [`serde::json::JsonValue`] tree as pretty-printed JSON
//! (2-space indent, field order preserved).

use serde::json::JsonValue;
use serde::Serialize;

/// Serialization error. The stub data model is infallible, so this is
/// never actually produced; it exists for signature compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0);
    Ok(out)
}

/// Serialize `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let pretty = to_string_pretty(value)?;
    // Compact form is only used for small debug payloads; re-rendering
    // from the tree keeps one code path.
    let mut out = String::new();
    write_compact(&mut out, &value.to_json());
    let _ = pretty;
    Ok(out)
}

fn write_value(out: &mut String, v: &JsonValue, indent: usize) {
    match v {
        JsonValue::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn write_compact(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::I64(n) => out.push_str(&n.to_string()),
        JsonValue::U64(n) => out.push_str(&n.to_string()),
        JsonValue::F64(x) => {
            if x.is_finite() {
                // Keep integral floats distinguishable from ints, as the
                // real crate does ("1.0", not "1").
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use serde::json::JsonValue;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = JsonValue::Array(vec![JsonValue::Object(vec![
            ("name".to_string(), JsonValue::Str("a\"b".into())),
            ("n".to_string(), JsonValue::U64(3)),
            ("x".to_string(), JsonValue::F64(2.0)),
        ])]);
        struct W(JsonValue);
        impl serde::Serialize for W {
            fn to_json(&self) -> JsonValue {
                self.0.clone()
            }
        }
        let s = crate::to_string_pretty(&W(v)).unwrap();
        assert_eq!(
            s,
            "[\n  {\n    \"name\": \"a\\\"b\",\n    \"n\": 3,\n    \"x\": 2.0\n  }\n]"
        );
    }

    #[test]
    fn compact_matches_structure() {
        struct W;
        impl serde::Serialize for W {
            fn to_json(&self) -> JsonValue {
                JsonValue::Object(vec![("k".into(), JsonValue::I64(-1))])
            }
        }
        assert_eq!(crate::to_string(&W).unwrap(), "{\"k\":-1}");
    }
}
