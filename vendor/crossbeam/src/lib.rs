//! Minimal in-tree stand-in for `crossbeam`, covering the scoped-thread
//! API this workspace uses (`crossbeam::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`), implemented over `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A scope in which borrowing, structured threads can be spawned.
///
/// Mirrors `crossbeam_utils::thread::Scope`: `spawn` passes the scope back
/// to the closure so children can spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a thread spawned inside a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result (or the panic
    /// payload if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope so
    /// it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Run `f` with a thread scope; every spawned thread is joined before this
/// returns. Returns `Err` with the panic payload if `f` or any *unjoined*
/// spawned thread panicked (crossbeam semantics).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn spawned_threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        let out = super::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let counter = &counter;
                handles.push(s.spawn(move |_| counter.fetch_add(1, Ordering::Relaxed)));
            }
            let results: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            results.len()
        })
        .unwrap();
        assert_eq!(out, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_in_child_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
