//! Minimal in-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly and a poisoned
//! lock (a panicking critical section) is transparently recovered rather
//! than surfaced as an error, matching parking_lot semantics closely
//! enough for this workspace.

use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable with parking_lot's in-place `wait` signature
/// (`&mut MutexGuard` instead of std's guard-by-value handoff).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guarded lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a fresh one; bridge to
        // the in-place signature by moving the guard out and back.
        // SAFETY: the value at `guard` is moved out exactly once and a
        // valid replacement is written before any exit path — the closure
        // chain between read and write cannot panic (poison is mapped to
        // `into_inner`).
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
