//! Minimal in-tree stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses —
//! ranges, tuples, `Just`, `any`, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `bool::ANY`, `ProptestConfig`, and the `proptest!`
//! test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test runs `cases` iterations with a deterministic
//! per-case RNG. Failures panic immediately (there is **no shrinking**);
//! the failing case index is printed by the assertion message. Regression
//! files (`*.proptest-regressions`) are ignored.

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` — deterministic across runs.
    pub fn deterministic(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x243f_6a88_85a3_08d3 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + Clone,
    {
        strategy::Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + 'static> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (stand-in for proptest's
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draw a uniformly random value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full domain of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl super::Strategy for AnyBool {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut super::TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either `true` or `false`, uniformly.
    pub const ANY: AnyBool = AnyBool;
}

/// Test-runner configuration (only `cases` is honoured here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Shrink-iteration budget. Accepted for source compatibility with
    /// the real crate; this stand-in's shrinking is already bounded.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Choose uniformly among several strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a `proptest!` body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// runs `cases` times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::deterministic(__case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// One-stop import for tests.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_oneof_generate_in_domain() {
        let mut rng = crate::TestRng::deterministic(0);
        let s = (0..10i64, 5..=6u16, crate::bool::ANY);
        for _ in 0..500 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
        let u = prop_oneof![Just(1usize), Just(4), Just(32)];
        for _ in 0..100 {
            assert!(matches!(u.generate(&mut rng), 1 | 4 | 32));
        }
    }

    #[test]
    fn vec_strategy_respects_length_and_maps() {
        let mut rng = crate::TestRng::deterministic(3);
        let s = crate::collection::vec((0..5u8).prop_map(|x| x * 2), 1..4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| x % 2 == 0 && *x < 10));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec(0..1_000i64, 0..10);
        let a = s.generate(&mut crate::TestRng::deterministic(7));
        let b = s.generate(&mut crate::TestRng::deterministic(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0..100i64, v in crate::collection::vec(any::<i64>(), 0..4)) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.len(), v.len(), "trivially {}", "true");
        }
    }
}
