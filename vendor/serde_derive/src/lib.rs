//! `#[derive(Serialize)]` for structs with named fields, implemented by
//! walking the raw `TokenStream` (no `syn`/`quote`, which are unavailable
//! offline). Generics, enums, tuple structs, and field attributes are not
//! supported — the workspace only derives on plain named-field structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by lowering each named field in declaration
/// order into a `JsonValue::Object` entry.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = parse_named_struct(&tokens);
    let fields = parse_field_names(body);

    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f})),"
            )
        })
        .collect();

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \x20   fn to_json(&self) -> ::serde::json::JsonValue {{\n\
         \x20       ::serde::json::JsonValue::Object(vec![{entries}])\n\
         \x20   }}\n\
         }}\n"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Find `struct <Name> { ... }`, skipping attributes and visibility.
fn parse_named_struct(tokens: &[TokenTree]) -> (String, TokenStream) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = match &tokens[i + 1] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("expected struct name, found {other}"),
                };
                // The brace group must follow the name immediately:
                // anything in between means generics or a tuple struct —
                // out of scope for this stub.
                match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return (name, g.stream());
                    }
                    _ => panic!(
                        "derive(Serialize) stub supports only plain named-field structs"
                    ),
                }
            }
            _ => i += 1,
        }
    }
    panic!("derive(Serialize) stub: no `struct` item found");
}

/// Field names from a named-field body: split on top-level commas, skip
/// `#[...]` attributes and `pub`/`pub(...)` visibility, take the ident
/// before the `:`.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut at_field_start = true;
    let mut skip_next_group = false; // the `(...)` of `pub(crate)` or `#`'s `[...]`
    for tree in body {
        match tree {
            TokenTree::Punct(p) if p.as_char() == ',' => at_field_start = true,
            TokenTree::Punct(p) if p.as_char() == '#' => skip_next_group = true,
            TokenTree::Group(_) if skip_next_group => skip_next_group = false,
            TokenTree::Ident(id) if at_field_start => {
                let s = id.to_string();
                if s == "pub" {
                    skip_next_group = true; // harmless if no `(...)` follows
                } else {
                    fields.push(s);
                    at_field_start = false;
                }
            }
            _ => {
                // Type tokens after the `:` — a `pub` not followed by a
                // group leaves skip_next_group set; clear it here.
                skip_next_group = false;
            }
        }
    }
    fields
}
