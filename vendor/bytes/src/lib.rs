//! Minimal in-tree stand-in for the `bytes` crate: a cheaply-cloneable
//! immutable byte container ([`Bytes`]), a growable builder ([`BytesMut`]),
//! and the [`Buf`]/[`BufMut`] cursor traits with the big-endian integer
//! accessors this workspace uses. Wire format matches the real crate
//! (network byte order).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (zero-copy in the real crate; copied here).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of this buffer sharing the same backing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes { data: Arc::clone(&self.data), start: self.start + range.start, end: self.start + range.end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All integer accessors are big-endian,
/// matching the real `bytes` crate. Accessors panic when the source is
/// exhausted — callers bounds-check via [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Consume a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let v = i64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}

/// Write cursor over a growable byte sink. Big-endian, like the real crate.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        b.put_i64(-9);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u64(), 42);
        assert_eq!(cur.get_i64(), -9);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.chunk(), b"xy");
    }

    #[test]
    fn bytes_clone_and_slice_share() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
    }

    #[test]
    fn bytes_buf_advances() {
        let mut b = Bytes::from(vec![0, 0, 0, 5, 9]);
        assert_eq!(b.get_u32(), 5);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 0);
    }
}
