//! Minimal in-tree stand-in for `rand` 0.8 covering the surface this
//! workspace uses: `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::{seed_from_u64, from_seed}`, and `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges.
//!
//! The exact bit streams differ from the real crate (different generator),
//! which is fine: seeded workloads only need *self*-reproducibility.

/// Low-level generator: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the stand-in for the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span = 0` means the full u64 range),
/// bias removed by Lemire-style widening multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of `T` (the real crate's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value within `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a 64-bit seed (SplitMix64, as rand does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va, (0..16).map(|_| c.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20i64);
            assert!((10..20).contains(&x));
            let y = r.gen_range(1..=6u32);
            assert!((1..=6).contains(&y));
            let f = r.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(5);
        let _: u64 = r.gen_range(0..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(0..100i64)
        }
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).contains(&draw(&mut r)));
    }
}
