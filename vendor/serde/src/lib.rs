//! Minimal in-tree stand-in for `serde`.
//!
//! Instead of the real visitor-based `Serializer` protocol, [`Serialize`]
//! lowers a value to a [`json::JsonValue`] tree, which `serde_json` then
//! renders. That is the only data format this workspace emits, so the
//! simplification is invisible to callers: `#[derive(Serialize)]` plus
//! `serde_json::to_string_pretty` work as with the real crates.

/// Re-export of the derive macro (same-name-as-trait, like real serde).
#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// The JSON data model [`Serialize`] lowers into.
pub mod json {
    /// A JSON value tree. Integer variants are kept exact (not as `f64`).
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer (exact).
        I64(i64),
        /// Unsigned integer (exact).
        U64(u64),
        /// Floating point.
        F64(f64),
        /// String.
        Str(String),
        /// Array.
        Array(Vec<JsonValue>),
        /// Object with field order preserved.
        Object(Vec<(String, JsonValue)>),
    }
}

use json::JsonValue;

/// Types that can be lowered to a [`JsonValue`] tree.
pub trait Serialize {
    /// Lower `self` to a JSON value.
    fn to_json(&self) -> JsonValue;
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> JsonValue { JsonValue::I64(*self as i64) }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> JsonValue { JsonValue::U64(*self as u64) }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::Serialize;

    #[test]
    fn primitives_lower_exactly() {
        assert_eq!(42u64.to_json(), JsonValue::U64(42));
        assert_eq!((-3i64).to_json(), JsonValue::I64(-3));
        assert_eq!(true.to_json(), JsonValue::Bool(true));
        assert_eq!("hi".to_json(), JsonValue::Str("hi".into()));
        assert_eq!(
            vec![1u8, 2].to_json(),
            JsonValue::Array(vec![JsonValue::U64(1), JsonValue::U64(2)])
        );
        assert_eq!(None::<u8>.to_json(), JsonValue::Null);
    }
}
